"""The scheduling service: HTTP JSON API over the job queue and cache.

:class:`SchedulingService` is the transport-free core — submit/poll/
result/metrics as plain ``(status, body, headers)`` triples — and the
``http.server``-based layer underneath exposes it on a socket:

========  =======================  ==========================================
method    path                     meaning
========  =======================  ==========================================
POST      ``/v1/submit``           submit one job (202 queued, 200 cache hit
                                   or idempotent replay, 400 invalid, 429
                                   queue full, 503 draining — the last two
                                   with a depth-scaled Retry-After)
POST      ``/v1/batch``            submit many jobs in one request
GET       ``/v1/jobs/{id}``        job status document
GET       ``/v1/jobs/{id}/result`` result document (409 unfinished, 500
                                   failed with the structured error)
GET       ``/healthz``             ``starting``/``ok``/``draining``/
                                   ``degraded`` + queue depth
GET       ``/metrics``             counters, job states, cache + journal stats
========  =======================  ==========================================

Responses are canonical JSON (sorted keys), which is what makes a cache
hit *byte-identical* to the fresh response it replays.  Every job runs
in a supervised child process, so the worst a poisonous request can do
is fail its own job with a structured error — the service process never
dies with it.  With ``--state-dir`` the service is also durable: jobs
are journaled write-ahead and survive a crash or restart (see
:mod:`repro.service.journal`).
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Mapping

from repro.core.engine.config import check_retries, check_timeout
from repro.pool.faults import PoolFaultPlan
from repro.pool.worker import solve_one
from repro.problems.validation import ScheduleError, validate_schedule
from repro.service.admission import (
    AdmissionPolicy,
    ValidatedJob,
    ValidationError,
    validate_request,
)
from repro.service.cache import CacheKey, ResultCache
from repro.service.jobs import Job, JobRegistry, ServiceMetrics, error_payload
from repro.service.journal import JobJournal
from repro.service.queue import JobDispatcher

__all__ = ["SchedulingService", "ServiceHTTPServer", "make_server"]

#: Ceiling for the dynamic Retry-After hint (seconds); the floor is the
#: policy's ``retry_after_s``.
RETRY_AFTER_CAP_S = 30.0

Reply = "tuple[int, dict, dict[str, str]]"

_JOB_ROUTE = re.compile(r"/v1/jobs/([A-Za-z0-9_-]+)(/result)?")


class SchedulingService:
    """Queue, cache and registry behind one submit/poll/result surface.

    ``task_timeout`` is the default per-job deadline when a request
    carries no ``deadline_s``; either maps onto the dispatch-level
    watchdog, so a job over budget is killed and reported — never run to
    completion on a client that has already given up.  ``fault_plan``
    arms deterministic worker faults by job admission sequence (the CI
    drill kills a worker mid-job with it).

    ``state_dir`` arms durability: every job transition is journaled
    (write-ahead, CRC-guarded, fsync'd) and :meth:`start` replays the
    journal — terminal jobs stay resolvable, interrupted jobs re-run
    idempotently through the result cache.  ``max_terminal_jobs`` bounds
    registry memory (evicted ids are served read-through from the
    journal); ``drain_grace_s`` is how long SIGTERM-style :meth:`drain`
    lets in-flight jobs finish before cancelling them.
    """

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        workers: int = 1,
        cache: ResultCache | None = None,
        task_timeout: float | None = None,
        task_retries: int = 0,
        fault_plan: PoolFaultPlan | None = None,
        context: str | None = None,
        state_dir: Path | str | None = None,
        max_terminal_jobs: int | None = None,
        drain_grace_s: float = 10.0,
    ) -> None:
        check_timeout(task_timeout, "task_timeout")
        check_retries(task_retries, "task_retries")
        check_timeout(drain_grace_s, "drain_grace_s")
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.registry = JobRegistry(max_terminal_jobs=max_terminal_jobs)
        self.metrics = ServiceMetrics()
        self.cache = cache
        self.task_timeout = task_timeout
        self.task_retries = task_retries
        self.fault_plan = fault_plan
        self.workers = workers
        self.drain_grace_s = drain_grace_s
        self.journal = (
            JobJournal(Path(state_dir) / "journal.jsonl")
            if state_dir is not None else None
        )
        self.dispatcher = JobDispatcher(
            self._run_job,
            workers=workers,
            queue_cap=self.policy.queue_cap,
            context=context,
        )
        #: ``starting`` until :meth:`start` finishes replay, then ``ok``;
        #: ``draining`` once shutdown begins.  /healthz reports
        #: ``degraded`` (computed, not stored) on dead workers or a lost
        #: distributed host set.
        self._state = "starting"
        self._hosts_lost = False
        self._journal_quarantined = 0
        self._idem_lock = threading.Lock()
        #: idempotency key -> job id of the original submission.
        self._idempotency: dict[str, str] = {}

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        if self.journal is not None:
            self._recover()
        self.dispatcher.start()
        self._state = "ok"

    def stop(self) -> int:
        """Fast shutdown: cancel in-flight children.  Returns the number
        of worker threads that outlived the join (0 = clean)."""
        self._state = "draining"
        leaked = self.dispatcher.stop(abandon=self._abandon)
        if leaked:
            self.metrics.increment("worker_threads_leaked", by=leaked)
        return leaked

    def drain(self) -> int:
        """Graceful shutdown: finish in-flight jobs within the grace
        budget, journal the backlog ``interrupted`` for next-boot
        re-enqueue.  Returns leaked worker threads like :meth:`stop`."""
        self._state = "draining"
        leaked = self.dispatcher.drain(
            self.drain_grace_s, abandon=self._abandon
        )
        if leaked:
            self.metrics.increment("worker_threads_leaked", by=leaked)
        return leaked

    def _abandon(self, job: Job) -> None:
        """A queued job shutdown will never run: journal it interrupted
        (it re-enqueues at next boot) and fail it for current pollers."""
        if self.journal is not None:
            self.journal.record_interrupted(job.id)
        self.registry.update(
            job.id,
            state="failed",
            error={
                "error": "service shut down before the job ran; it will "
                         "re-run at next start from the journal",
                "error_type": "shutdown",
            },
        )
        self.metrics.increment("jobs_failed")

    def _recover(self) -> None:
        """Replay the journal: restore terminal visibility, re-enqueue
        interrupted work in original admission order."""
        assert self.journal is not None
        recovery = self.journal.replay()
        self._journal_quarantined = recovery.quarantined_lines
        if recovery.quarantined_lines:
            self.metrics.increment(
                "journal_quarantined_lines", by=recovery.quarantined_lines
            )
        self.registry.reserve(recovery.max_seq)
        with self._idem_lock:
            self._idempotency.update(recovery.idempotency)
        # Terminal jobs are *not* rebuilt in memory: their documents are
        # served read-through from the journal, so recovery cost and
        # resident memory stay flat no matter how long the journal is.
        if recovery.terminal:
            self.metrics.increment(
                "recovered_terminal", by=len(recovery.terminal)
            )
        for rec in recovery.pending:
            try:
                validated = validate_request(rec.request, self.policy)
            except ValidationError as exc:
                # The request was admitted once, so this means policy
                # changed across the restart (say, --hosts dropped).
                # Fail it durably rather than re-queueing a poison job.
                job = Job(
                    id=rec.job_id,
                    method=rec.method,
                    instance_name=rec.instance_name,
                    key=rec.key,
                    state="failed",
                    idempotency_key=rec.idempotency_key,
                    error={
                        "error": f"job no longer admissible after "
                                 f"restart: {exc}",
                        "error_type": "validation",
                    },
                )
                self.registry.restore(job)
                self.journal.record_failed(
                    rec.job_id, error=job.error, duration_s=None
                )
                self.metrics.increment("recovered_rejected")
                continue
            job = Job(
                id=rec.job_id,
                method=validated.method,
                instance_name=validated.instance.name,
                key=CacheKey.for_job(validated).hex,
                idempotency_key=rec.idempotency_key,
                recovered=True,
                validated=validated,
            )
            self.registry.restore(job)
            self.dispatcher.enqueue_recovered(job)
            self.metrics.increment("recovered_requeued")

    # -- submission -----------------------------------------------------

    def submit(self, body: Any) -> Reply:
        """One submission: 200 cache hit / idempotent terminal replay,
        202 queued, 400 invalid, 429 full, 503 draining."""
        if self._state == "draining":
            return self._draining_reply()
        try:
            validated = validate_request(body, self.policy)
        except ValidationError as exc:
            self.metrics.increment("rejected_invalid")
            return 400, {"error": str(exc), "error_type": "validation"}, {}
        ikey = validated.idempotency_key
        if ikey is None:
            return self._admit(validated, body)
        # Lookup + admit + record are one critical section, so two
        # concurrent submissions with the same key cannot both admit.
        with self._idem_lock:
            existing = self._idempotency.get(ikey)
            if existing is not None:
                reply = self._idempotent_reply(existing, validated)
                if reply is not None:
                    return reply
                # The original job is gone even from the journal (its
                # submitted line was corrupted): admit afresh below and
                # let the new job own the key.
            status, doc, headers = self._admit(validated, body)
            if status in (200, 202):
                self._idempotency[ikey] = doc["job_id"]
            return status, doc, headers

    def _idempotent_reply(
        self, job_id: str, validated: ValidatedJob
    ) -> Reply | None:
        """The original submission's status, or ``None`` if untraceable."""
        doc = self.registry.status(job_id)
        if doc is None and self.journal is not None:
            view = self.journal.lookup(job_id)
            if view is not None:
                doc = {k: v for k, v in view.items() if k != "document"}
        if doc is None:
            return None
        if doc.get("key") != CacheKey.for_job(validated).hex:
            return 409, {
                "error": (
                    f"idempotency_key reused with a different request; "
                    f"the original submission is job {job_id!r}"
                ),
                "error_type": "idempotency_conflict",
                "job_id": job_id,
            }, {}
        self.metrics.increment("idempotent_replays")
        code = 200 if doc.get("state") in ("done", "failed") else 202
        return code, doc, {}

    def _draining_reply(self) -> Reply:
        hint = self.retry_after_hint()
        return 503, {
            "error": "service is draining; retry against the restarted "
                     "instance",
            "error_type": "draining",
            "retry_after_s": hint,
        }, self._retry_after_headers()

    def submit_batch(self, body: Any) -> Reply:
        """Submit a list of jobs; per-item outcomes, one admission each.

        Items are admitted independently — a bad or bounced item never
        blocks its siblings.  The response carries one entry per item
        (mirroring batch solve's slot-per-instance contract).  When
        *every* item bounced off the full queue the whole response is
        429 with Retry-After, so naive clients back off correctly.
        """
        if self._state == "draining":
            return self._draining_reply()
        if not isinstance(body, dict):
            return 400, {
                "error": "batch body must be a JSON object",
                "error_type": "validation",
            }, {}
        items = body.get("jobs")
        if not isinstance(items, list) or not items:
            return 400, {
                "error": "'jobs' must be a non-empty array of submissions",
                "error_type": "validation",
            }, {}
        if len(items) > self.policy.max_batch:
            return 400, {
                "error": (
                    f"batch of {len(items)} exceeds max_batch="
                    f"{self.policy.max_batch}"
                ),
                "error_type": "validation",
            }, {}
        entries = []
        statuses = []
        for item in items:
            status, doc, _ = self.submit(item)
            statuses.append(status)
            entries.append({"status": status, **doc})
        if statuses and all(status == 429 for status in statuses):
            return 429, {"jobs": entries}, self._retry_after_headers()
        return 200, {"jobs": entries}, {}

    def _admit(self, validated: ValidatedJob, body: Any) -> Reply:
        key = CacheKey.for_job(validated)
        if self.cache is not None:
            payload = self.cache.load(key)
            if payload is not None:
                job = self.registry.create(
                    method=validated.method,
                    instance_name=validated.instance.name,
                    key=key.hex,
                    state="done",
                    cached=True,
                    document=payload,
                    idempotency_key=validated.idempotency_key,
                )
                self._journal_submitted(job, validated, body)
                if self.journal is not None:
                    self.journal.record_done(
                        job.id, document=payload, cached=True,
                        duration_s=None,
                    )
                self.metrics.increment("submitted")
                self.metrics.increment("cache_hits")
                status = self.registry.status(job.id)
                assert status is not None
                return 200, status, {}
            self.metrics.increment("cache_misses")
        job = self.registry.create(
            method=validated.method,
            instance_name=validated.instance.name,
            key=key.hex,
            validated=validated,
            idempotency_key=validated.idempotency_key,
        )
        if not self.dispatcher.try_enqueue(job):
            self.registry.discard(job.id)
            self.metrics.increment("rejected_queue_full")
            hint = self.retry_after_hint()
            return 429, {
                "error": (
                    f"job queue is full ({self.policy.queue_cap} waiting); "
                    f"retry after {hint:g}s"
                ),
                "error_type": "queue_full",
                "retry_after_s": hint,
            }, self._retry_after_headers()
        # Journal after the enqueue decision: a bounced job leaves no
        # trace to replay.  The replay path tolerates a racing worker
        # journaling ``running`` a moment before this line lands.
        self._journal_submitted(job, validated, body)
        self.metrics.increment("submitted")
        status = self.registry.status(job.id)
        assert status is not None
        return 202, status, {}

    def _journal_submitted(
        self, job: Job, validated: ValidatedJob, body: Any
    ) -> None:
        if self.journal is None:
            return
        self.journal.record_submitted(
            job.id,
            # Registry ids are "j%06d", so the numeric part doubles as
            # the admission sequence the registry reserves at replay.
            seq=int(job.id[1:]),
            request=body,
            key=job.key,
            method=job.method,
            instance_name=job.instance_name,
            idempotency_key=validated.idempotency_key,
        )

    def retry_after_hint(self) -> float:
        """Back-off hint scaled by queue depth, clamped to
        ``[policy.retry_after_s, RETRY_AFTER_CAP_S]``.

        A full 4-deep queue and a full 400-deep queue should not tell
        clients the same thing: the deeper the backlog, the longer a
        retry will keep bouncing, so the hint grows linearly with depth
        until the cap.
        """
        base = self.policy.retry_after_s
        depth = self.dispatcher.depth()
        return max(base, min(RETRY_AFTER_CAP_S, base * max(depth, 1)))

    def _retry_after_headers(self) -> dict[str, str]:
        return {"Retry-After": str(math.ceil(self.retry_after_hint()))}

    # -- polling --------------------------------------------------------

    def job_status(self, job_id: str) -> Reply:
        doc = self.registry.status(job_id)
        if doc is None:
            doc = self._journal_status(job_id)
        if doc is None:
            return 404, {
                "error": f"no such job {job_id!r}",
                "error_type": "not_found",
            }, {}
        return 200, doc, {}

    def job_result(self, job_id: str) -> Reply:
        view = self.registry.result_view(job_id)
        if view is None:
            reply = self._journal_result(job_id)
            if reply is not None:
                return reply
            return 404, {
                "error": f"no such job {job_id!r}",
                "error_type": "not_found",
            }, {}
        state, body = view
        if state == "done":
            return 200, body, {}
        if state == "failed":
            return 500, body, {}
        return 409, {
            "error": f"job {job_id!r} is {state}, not finished; poll "
                     f"/v1/jobs/{job_id}",
            "error_type": "unfinished",
            "state": state,
        }, {}

    def _journal_status(self, job_id: str) -> dict[str, Any] | None:
        """Status read-through for evicted / pre-restart terminal jobs."""
        if self.journal is None:
            return None
        view = self.journal.lookup(job_id)
        if view is None:
            return None
        self.metrics.increment("journal_read_through")
        return {k: v for k, v in view.items() if k != "document"}

    def _journal_result(self, job_id: str) -> Reply | None:
        if self.journal is None:
            return None
        view = self.journal.lookup(job_id)
        if view is None:
            return None
        self.metrics.increment("journal_read_through")
        if view["state"] == "done" and view.get("document") is not None:
            # The journaled document is the exact dict the cache stored,
            # so this replay is byte-identical to the pre-crash response.
            return 200, view["document"], {}
        return 500, {k: v for k, v in view.items() if k != "document"}, {}

    def health(self) -> Reply:
        reasons = []
        alive = self.dispatcher.alive_workers()
        if self._state == "ok" and alive < self.workers:
            reasons.append(
                f"{self.workers - alive} of {self.workers} worker "
                "thread(s) dead"
            )
        if self._hosts_lost:
            reasons.append("distributed host set lost")
        if self._state in ("starting", "draining"):
            status = self._state
        elif reasons:
            status = "degraded"
        else:
            status = "ok"
        doc: dict[str, Any] = {
            "status": status,
            "queue_depth": self.dispatcher.depth(),
            "queue_cap": self.policy.queue_cap,
            "workers": self.workers,
            "alive_workers": alive,
        }
        if reasons:
            doc["reasons"] = reasons
        headers = (
            self._retry_after_headers() if status == "draining" else {}
        )
        return 200, doc, headers

    def metrics_doc(self) -> Reply:
        doc: dict[str, Any] = {
            "state": self._state,
            "counters": self.metrics.snapshot(),
            "jobs": self.registry.counts(),
            "terminal_jobs": self.registry.eviction_stats(),
            "queue_depth": self.dispatcher.depth(),
            "queue_cap": self.policy.queue_cap,
            "workers": self.workers,
            "alive_workers": self.dispatcher.alive_workers(),
            "cache": self.cache.stats() if self.cache is not None else None,
            "journal": (
                {
                    "appends": self.journal.appends,
                    "quarantined_at_boot": self._journal_quarantined,
                }
                if self.journal is not None else None
            ),
        }
        return 200, doc, {}

    # -- execution ------------------------------------------------------

    def _run_job(self, job: Job, dispatch: Any, seq: int) -> None:
        """Run one admitted job on the worker's supervised dispatch.

        Never raises: every outcome — including a bug in dispatch itself
        — lands on the job record as a structured error, because a queue
        worker dying would silently halve service capacity.
        """
        validated = job.validated
        assert validated is not None
        if job.recovered and self.cache is not None:
            # Idempotent re-execution: if the pre-crash run finished and
            # its result landed in the content-addressed cache, this is
            # a byte-identical replay, not a re-solve.
            payload = self.cache.load(CacheKey.for_job(validated))
            if payload is not None:
                if self.journal is not None:
                    self.journal.record_done(
                        job.id, document=payload, cached=True,
                        duration_s=None,
                    )
                self.registry.update(
                    job.id, state="done", cached=True, document=payload
                )
                self.metrics.increment("cache_hits")
                self.metrics.increment("jobs_completed")
                return
            self.metrics.increment("cache_misses")
        if self.journal is not None:
            self.journal.record_running(job.id)
        self.registry.update(job.id, state="running")
        deadline = (
            validated.deadline_s if validated.deadline_s is not None
            else self.task_timeout
        )
        start = time.perf_counter()
        try:
            status, value = dispatch.run(
                solve_one,
                (validated.instance, validated.method,
                 dict(validated.solve_kwargs)),
                label=job.id,
                task_timeout=deadline,
                task_retries=self.task_retries,
                fault_plan=self.fault_plan,
                task_index=seq,
            )
        except Exception as exc:  # noqa: BLE001 - worker must survive anything
            status, value = "error", exc
        duration = time.perf_counter() - start
        if status == "ok":
            try:
                # Same defense in depth as batch solving: the transport
                # digest proved the bytes, this proves the content.
                validate_schedule(validated.instance, value.schedule)
            except ScheduleError as exc:
                status, value = "error", exc
        if status == "ok":
            document = {
                "instance": validated.instance.name,
                "method": validated.method,
                "key": job.key,
                "result": value.to_dict(),
            }
            if self.cache is not None:
                self.cache.store(CacheKey.for_job(validated), document)
                self.metrics.increment("cache_stores")
            if self.journal is not None:
                self.journal.record_done(
                    job.id, document=document, cached=False,
                    duration_s=duration,
                )
            self.registry.update(
                job.id, state="done", document=document, duration_s=duration
            )
            self.metrics.increment("jobs_completed")
            if validated.backend == "distributed":
                self._hosts_lost = False
            return
        if status == "cancelled":
            error = {
                "error": "job cancelled: service shutting down; it will "
                         "re-run at next start from the journal",
                "error_type": "cancelled",
            }
            # Cancellation is shutdown, not failure: journaled as
            # ``interrupted`` so the job re-enqueues at next boot.
            if self.journal is not None:
                self.journal.record_interrupted(job.id)
        elif status == "interrupt":
            error = {
                "error": "solve interrupted in the worker",
                "error_type": "interrupt",
            }
        else:
            error = error_payload(value)
        if status != "cancelled" and self.journal is not None:
            self.journal.record_failed(
                job.id, error=error, duration_s=duration
            )
        if (
            validated.backend == "distributed"
            and error.get("error_type") == "AllHostsLostError"
        ):
            self._hosts_lost = True
        self.registry.update(
            job.id, state="failed", error=error, duration_s=duration
        )
        self.metrics.increment("jobs_failed")


# -- HTTP layer ---------------------------------------------------------


def _render(doc: Mapping[str, Any]) -> bytes:
    """Canonical response bytes: sorted-key JSON plus one newline.

    Sorted keys make the rendering a pure function of the document, so
    replaying a cached document is byte-identical to the fresh response
    that stored it.
    """
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


class ServiceHTTPServer(ThreadingHTTPServer):
    """Thread-per-connection HTTP server bound to one service."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self, address: tuple[str, int], service: SchedulingService
    ) -> None:
        self.service = service
        super().__init__(address, _ServiceHandler)

    @property
    def label(self) -> str:
        """``host:port`` actually bound (resolves ``:0`` requests)."""
        host, port = self.server_address[:2]
        return f"{host}:{port}"


class _ServiceHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    protocol_version = "HTTP/1.1"

    # Suppress the default per-request stderr lines; the service's
    # observable surface is /metrics, not an access log.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        try:
            self._reply(*self._route_get())
        except Exception as exc:  # noqa: BLE001 - one request, not the server
            self._best_effort_500(exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        try:
            self._reply(*self._route_post())
        except Exception as exc:  # noqa: BLE001 - one request, not the server
            self._best_effort_500(exc)

    # -- routing --------------------------------------------------------

    def _route_get(self) -> tuple[int, dict, dict[str, str]]:
        service = self.server.service
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            return service.health()
        if path == "/metrics":
            return service.metrics_doc()
        match = _JOB_ROUTE.fullmatch(path)
        if match is not None:
            job_id, result_leaf = match.groups()
            if result_leaf:
                return service.job_result(job_id)
            return service.job_status(job_id)
        return self._not_found()

    def _route_post(self) -> tuple[int, dict, dict[str, str]]:
        service = self.server.service
        path = self.path.split("?", 1)[0]
        if path not in ("/v1/submit", "/v1/batch"):
            return self._not_found()
        body, failure = self._read_json(service.policy.max_body_bytes)
        if failure is not None:
            return failure
        if path == "/v1/submit":
            return service.submit(body)
        return service.submit_batch(body)

    def _not_found(self) -> tuple[int, dict, dict[str, str]]:
        return 404, {
            "error": f"no route {self.command} {self.path!r}",
            "error_type": "not_found",
        }, {}

    # -- plumbing -------------------------------------------------------

    def _read_json(
        self, max_bytes: int
    ) -> tuple[Any, "tuple[int, dict, dict[str, str]] | None"]:
        length_text = self.headers.get("Content-Length")
        if length_text is None:
            return None, (411, {
                "error": "Content-Length is required",
                "error_type": "validation",
            }, {})
        try:
            length = int(length_text)
        except ValueError:
            return None, (400, {
                "error": f"bad Content-Length {length_text!r}",
                "error_type": "validation",
            }, {})
        if length < 0:
            return None, (400, {
                "error": f"bad Content-Length {length_text!r}",
                "error_type": "validation",
            }, {})
        if length > max_bytes:
            self._drain_oversized(length, max_bytes)
            return None, (413, {
                "error": f"body of {length} bytes exceeds the "
                         f"{max_bytes}-byte limit",
                "error_type": "validation",
            }, {})
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8")), None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return None, (400, {
                "error": f"body is not valid JSON: {exc}",
                "error_type": "validation",
            }, {})

    def _drain_oversized(self, length: int, max_bytes: int) -> None:
        """Discard a too-large body so the 413 actually reaches the client.

        Replying without consuming the upload races the client's own
        send: closing the socket with unread data makes the kernel reset
        the connection, and the client sees the reset before it can read
        the status line.  Discarding in bounded chunks keeps memory flat
        and lets the client finish writing, so the 413 arrives reliably.
        Bodies beyond ``4 * max_bytes`` are abandoned instead — the
        connection is marked for close and whatever the client had in
        flight is its own problem; a bogus Content-Length must not be
        able to demand unbounded drain work.
        """
        remaining = min(length, 4 * max_bytes)
        if length > 4 * max_bytes:
            self.close_connection = True
        while remaining > 0:
            chunk = self.rfile.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)

    def _reply(
        self, status: int, doc: dict, headers: dict[str, str]
    ) -> None:
        body = _render(doc)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _best_effort_500(self, exc: Exception) -> None:
        try:
            self._reply(500, {
                "error": f"internal error: {exc!r}",
                "error_type": "internal",
            }, {})
        except Exception:  # noqa: BLE001 - headers may already be gone
            # The connection is torn or headers already sent; the client
            # sees a dropped connection, the server thread lives on.
            pass


def make_server(
    service: SchedulingService, host: str, port: int
) -> ServiceHTTPServer:
    """Bind the HTTP layer (``port=0`` picks an ephemeral port)."""
    return ServiceHTTPServer((host, port), service)
