"""Content-addressed result cache: solve identity in, bytes out.

The repo's determinism contract makes every solve memoizable: the result
is a pure function of ``(instance, method, config, seed, device
profile)``.  :class:`CacheKey` is that tuple made canonical — the
instance and the resolved configuration digested through
:mod:`repro.instances.digest`, the same hashing contract the pool's
payload-integrity checks use — and :class:`ResultCache` is a disk map
from the key to the finished result document.

Entries follow the checkpoint store's defensive format
(:mod:`repro.resilience.checkpoint`): a JSON record carrying its own
CRC-32, written atomically, verified on every read.  A record that fails
*any* check — unreadable JSON, wrong schema, key mismatch (a colliding
or renamed file), CRC mismatch (torn or bit-rotted write) — is moved
verbatim into ``quarantine/`` next to the cache, preserving the evidence,
and the lookup degrades to a miss: a corrupt cache can cost a recompute,
never a wrong answer.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
from pathlib import Path
from typing import Any

from repro.instances.digest import instance_digest, mapping_digest
from repro.resilience.atomic import atomic_write_text
from repro.resilience.checkpoint import record_crc
from repro.service.admission import ValidatedJob

__all__ = ["CACHE_SCHEMA", "CacheKey", "ResultCache"]

#: Bump when the entry format changes; readers treat other schemas as
#: corrupt (quarantined, recomputed) rather than guessing.
CACHE_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class CacheKey:
    """The canonical identity of one solve.

    ``instance`` and ``config`` are already digests (hex SHA-256 of the
    canonical JSON forms); ``seed`` and ``device_profile`` stay readable
    because they are the components operators grep for when auditing
    what a cache holds.
    """

    instance: str
    method: str
    config: str
    seed: int
    device_profile: str

    @classmethod
    def for_job(cls, validated: ValidatedJob) -> "CacheKey":
        return cls(
            instance=instance_digest(validated.instance),
            method=validated.method,
            config=mapping_digest(validated.canonical_config),
            seed=validated.seed,
            device_profile=validated.device_profile,
        )

    def components(self) -> dict[str, Any]:
        return {
            "instance": self.instance,
            "method": self.method,
            "config": self.config,
            "seed": self.seed,
            "device_profile": self.device_profile,
        }

    @property
    def hex(self) -> str:
        """The flat address: hex SHA-256 over the canonical components."""
        return mapping_digest(self.components())


class ResultCache:
    """Disk-backed map from :class:`CacheKey` to result documents.

    Layout: ``<root>/<key[:2]>/<key>.json`` (two-level fan-out keeps
    directories small at large entry counts), plus ``<root>/quarantine/``
    for rejected entries.  Thread-safe; the store path is atomic, so a
    reader never observes a half-written entry.
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    def path_for(self, key: CacheKey) -> Path:
        address = key.hex
        return self.root / address[:2] / f"{address}.json"

    def load(self, key: CacheKey) -> dict[str, Any] | None:
        """The stored result document, or ``None`` (miss / quarantined)."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except OSError:
            # Unreadable but present: nothing to preserve, cannot trust.
            with self._lock:
                self.misses += 1
            return None
        payload = self._decode(text, key)
        with self._lock:
            if payload is None:
                self.misses += 1
            else:
                self.hits += 1
        if payload is None:
            self._quarantine(path)
        return payload

    def store(self, key: CacheKey, payload: dict[str, Any]) -> None:
        """Persist one result document under its key, atomically."""
        record = {
            "schema": CACHE_SCHEMA,
            "key": key.hex,
            "components": key.components(),
            "payload": payload,
        }
        record["crc"] = record_crc(record)
        atomic_write_text(
            self.path_for(key), json.dumps(record, sort_keys=True) + "\n"
        )
        with self._lock:
            self.stores += 1

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "quarantined": self.quarantined,
            }

    def _decode(self, text: str, key: CacheKey) -> dict[str, Any] | None:
        """Validate one entry end to end; ``None`` means quarantine it."""
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict):
            return None
        if record.get("schema") != CACHE_SCHEMA:
            return None
        if record.get("crc") != record_crc(record):
            return None
        if record.get("key") != key.hex:
            return None
        if record.get("components") != key.components():
            return None
        payload = record.get("payload")
        if not isinstance(payload, dict):
            return None
        return payload

    def _quarantine(self, path: Path) -> None:
        """Move a rejected entry aside verbatim, preserving the evidence."""
        quarantine_dir = self.root / "quarantine"
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, quarantine_dir / path.name)
        except OSError:
            # A racing quarantine already moved it; the count still
            # records that this lookup rejected an entry.
            pass
        with self._lock:
            self.quarantined += 1
