"""``repro serve`` — run the scheduling service from the command line.

Kept out of :mod:`repro.cli` so the top-level parser builds without
importing the service stack; the subcommand wires flags to
:class:`~repro.service.api.SchedulingService` and blocks in
``serve_forever`` until interrupted.
"""

from __future__ import annotations

import argparse
import signal
import sys

__all__ = ["DEFAULT_SERVICE_PORT", "add_serve_arguments", "run_serve"]

#: Default service port — one above the distributed layer's agent range
#: so a localhost drill can run both side by side with no flags.
DEFAULT_SERVICE_PORT = 7480


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``repro serve`` flag set."""
    parser.add_argument(
        "--bind", default="127.0.0.1", metavar="HOST[:PORT]",
        help="listen address (default: %(default)s on port "
             f"{DEFAULT_SERVICE_PORT}; ':0' picks an ephemeral port — "
             "pair with --ready-file)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="concurrent solve jobs; each runs in its own supervised "
             "worker process (default: %(default)s)",
    )
    parser.add_argument(
        "--queue-cap", type=int, default=16, metavar="N",
        help="maximum jobs waiting to run; past it submissions get 429 "
             "with a Retry-After header (default: %(default)s)",
    )
    parser.add_argument(
        "--cache-dir", default="results/cache", metavar="DIR",
        help="content-addressed result cache directory (default: "
             "%(default)s; 'none' disables caching)",
    )
    parser.add_argument(
        "--backend", default="vectorized",
        help="engine backend for requests that name none (default: "
             "%(default)s)",
    )
    parser.add_argument(
        "--hosts", default=None, metavar="HOST[:PORT]:WORKERS,...",
        help="host-agent topology that enables backend='distributed' "
             "requests (same syntax as repro solve --hosts)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="default per-job wall-clock deadline when a request carries "
             "no deadline_s; an over-budget job is killed and fails with "
             "a structured error (default: unlimited)",
    )
    parser.add_argument(
        "--task-retries", type=int, default=0, metavar="K",
        help="retries of abnormally-dying jobs (worker crash/timeout/"
             "corrupt payload) before the job fails (default: %(default)s)",
    )
    parser.add_argument(
        "--retry-after", type=float, default=1.0, metavar="SECONDS",
        help="back-off advertised with 429 responses (default: "
             "%(default)s)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=32, metavar="N",
        help="maximum jobs in one POST /v1/batch (default: %(default)s)",
    )
    parser.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write the bound HOST:PORT to PATH once listening (lets "
             "scripts and CI drills use --bind ':0')",
    )
    parser.add_argument(
        "--inject-pool-fault", default=None, metavar="KIND:JOB[:repeat]",
        help="deterministic worker fault injection for drills, keyed by "
             "job admission sequence, e.g. 'kill:0' (job 0's worker dies; "
             "with --task-retries the retry runs clean) or 'kill:0:repeat' "
             "(job 0 is quarantined); kinds: kill, hang, corrupt-payload",
    )


def _raise_interrupt(signum: int, frame: object) -> None:
    raise KeyboardInterrupt


def run_serve(args: argparse.Namespace) -> int:
    """Build the service from flags and serve until interrupted."""
    from repro.service.admission import AdmissionPolicy
    from repro.service.api import SchedulingService, make_server
    from repro.service.cache import ResultCache

    host, _, port_text = args.bind.partition(":")
    try:
        port = int(port_text) if port_text else DEFAULT_SERVICE_PORT
    except ValueError:
        print(f"bad --bind {args.bind!r}; expected HOST[:PORT]",
              file=sys.stderr)
        return 2
    fault_plan = None
    if args.inject_pool_fault:
        from repro.pool.faults import PoolFaultPlan, parse_pool_fault

        fault_plan = PoolFaultPlan([parse_pool_fault(args.inject_pool_fault)])
        if fault_plan.wants_hang() and args.task_timeout is None:
            print("a 'hang' fault can only be reaped by the watchdog; "
                  "set --task-timeout", file=sys.stderr)
            return 2
    try:
        policy = AdmissionPolicy(
            queue_cap=args.queue_cap,
            max_batch=args.max_batch,
            default_backend=args.backend,
            retry_after_s=args.retry_after,
            hosts=args.hosts,
        )
        cache = (
            None if args.cache_dir == "none" else ResultCache(args.cache_dir)
        )
        service = SchedulingService(
            policy=policy,
            workers=args.workers,
            cache=cache,
            task_timeout=args.task_timeout,
            task_retries=args.task_retries,
            fault_plan=fault_plan,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    server = make_server(service, host or "127.0.0.1", port)
    # Graceful shutdown on SIGTERM too: supervisors and CI send TERM, and
    # background jobs of non-interactive shells have SIGINT ignored, so
    # INT alone would leave in-flight solve children unreaped.
    signal.signal(signal.SIGTERM, _raise_interrupt)
    service.start()
    if args.ready_file:
        with open(args.ready_file, "w", encoding="utf-8") as handle:
            handle.write(f"{server.label}\n")
    print(
        f"service listening on {server.label} with {args.workers} "
        f"worker(s), queue cap {args.queue_cap}, cache "
        f"{'off' if cache is None else cache.root}",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        service.stop()
        server.server_close()
    return 0
