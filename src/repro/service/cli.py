"""``repro serve`` — run the scheduling service from the command line.

Kept out of :mod:`repro.cli` so the top-level parser builds without
importing the service stack; the subcommand wires flags to
:class:`~repro.service.api.SchedulingService` and serves until a
signal arrives.  The two signals mean different shutdowns:

* ``SIGINT`` (Ctrl-C) stops *fast*: in-flight solve children are
  cancelled and reaped, queued jobs are failed for current pollers
  (and, with ``--state-dir``, journaled for next-boot re-enqueue).
* ``SIGTERM`` (supervisors, CI) *drains*: submissions get 503 with
  Retry-After while in-flight jobs finish within ``--drain-grace``
  seconds; polls keep being served throughout, then the backlog is
  journaled ``interrupted`` and the process exits 0.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading

__all__ = ["DEFAULT_SERVICE_PORT", "add_serve_arguments", "run_serve"]

#: Default service port — one above the distributed layer's agent range
#: so a localhost drill can run both side by side with no flags.
DEFAULT_SERVICE_PORT = 7480


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``repro serve`` flag set."""
    parser.add_argument(
        "--bind", default="127.0.0.1", metavar="HOST[:PORT]",
        help="listen address (default: %(default)s on port "
             f"{DEFAULT_SERVICE_PORT}; ':0' picks an ephemeral port — "
             "pair with --ready-file)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="concurrent solve jobs; each runs in its own supervised "
             "worker process (default: %(default)s)",
    )
    parser.add_argument(
        "--queue-cap", type=int, default=16, metavar="N",
        help="maximum jobs waiting to run; past it submissions get 429 "
             "with a Retry-After header (default: %(default)s)",
    )
    parser.add_argument(
        "--cache-dir", default="results/cache", metavar="DIR",
        help="content-addressed result cache directory (default: "
             "%(default)s; 'none' disables caching)",
    )
    parser.add_argument(
        "--backend", default="vectorized",
        help="engine backend for requests that name none (default: "
             "%(default)s)",
    )
    parser.add_argument(
        "--hosts", default=None, metavar="HOST[:PORT]:WORKERS,...",
        help="host-agent topology that enables backend='distributed' "
             "requests (same syntax as repro solve --hosts)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="default per-job wall-clock deadline when a request carries "
             "no deadline_s; an over-budget job is killed and fails with "
             "a structured error (default: unlimited)",
    )
    parser.add_argument(
        "--task-retries", type=int, default=0, metavar="K",
        help="retries of abnormally-dying jobs (worker crash/timeout/"
             "corrupt payload) before the job fails (default: %(default)s)",
    )
    parser.add_argument(
        "--retry-after", type=float, default=1.0, metavar="SECONDS",
        help="back-off advertised with 429 responses (default: "
             "%(default)s)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=32, metavar="N",
        help="maximum jobs in one POST /v1/batch (default: %(default)s)",
    )
    parser.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="durable state directory: every job transition is journaled "
             "there and replayed at the next start with the same "
             "--state-dir, so jobs survive crashes and restarts "
             "(default: no durability)",
    )
    parser.add_argument(
        "--max-terminal-jobs", type=int, default=None, metavar="N",
        help="finished/failed jobs kept in memory; older ones are "
             "evicted and served from the journal when --state-dir is "
             "set (default: unlimited)",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="SECONDS",
        help="on SIGTERM, how long in-flight jobs may keep running "
             "before being cancelled (default: %(default)s)",
    )
    parser.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write the bound HOST:PORT to PATH once listening (lets "
             "scripts and CI drills use --bind ':0')",
    )
    parser.add_argument(
        "--inject-pool-fault", default=None, metavar="KIND:JOB[:repeat]",
        help="deterministic worker fault injection for drills, keyed by "
             "job admission sequence, e.g. 'kill:0' (job 0's worker dies; "
             "with --task-retries the retry runs clean) or 'kill:0:repeat' "
             "(job 0 is quarantined); kinds: kill, hang, corrupt-payload",
    )


def run_serve(args: argparse.Namespace) -> int:
    """Build the service from flags and serve until signalled."""
    if os.environ.get("REPRO_TSAN") == "1":
        # Instrument before the service constructs any lock, so the CI
        # recovery/chaos drills (which spawn `repro serve` subprocesses)
        # double as lock-order drills.  An inversion crashes the server
        # loudly instead of wedging the drill until its timeout.
        from repro.lint import sanitizer

        sanitizer.install()
    from repro.service.admission import AdmissionPolicy
    from repro.service.api import SchedulingService, make_server
    from repro.service.cache import ResultCache

    host, _, port_text = args.bind.partition(":")
    try:
        port = int(port_text) if port_text else DEFAULT_SERVICE_PORT
    except ValueError:
        print(f"bad --bind {args.bind!r}; expected HOST[:PORT]",
              file=sys.stderr)
        return 2
    fault_plan = None
    if args.inject_pool_fault:
        from repro.pool.faults import PoolFaultPlan, parse_pool_fault

        fault_plan = PoolFaultPlan([parse_pool_fault(args.inject_pool_fault)])
        if fault_plan.wants_hang() and args.task_timeout is None:
            print("a 'hang' fault can only be reaped by the watchdog; "
                  "set --task-timeout", file=sys.stderr)
            return 2
    try:
        policy = AdmissionPolicy(
            queue_cap=args.queue_cap,
            max_batch=args.max_batch,
            default_backend=args.backend,
            retry_after_s=args.retry_after,
            hosts=args.hosts,
        )
        cache = (
            None if args.cache_dir == "none" else ResultCache(args.cache_dir)
        )
        service = SchedulingService(
            policy=policy,
            workers=args.workers,
            cache=cache,
            task_timeout=args.task_timeout,
            task_retries=args.task_retries,
            fault_plan=fault_plan,
            state_dir=args.state_dir,
            max_terminal_jobs=args.max_terminal_jobs,
            drain_grace_s=args.drain_grace,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    server = make_server(service, host or "127.0.0.1", port)
    # HTTP runs on a background thread so the main thread can wait for a
    # signal and keep serving polls (and 503s) *during* a drain.  SIGINT
    # stops fast; SIGTERM drains — supervisors and CI send TERM and
    # expect in-flight work to finish.
    shutdown = {"mode": None}
    wake = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        if shutdown["mode"] is None:
            shutdown["mode"] = (
                "drain" if signum == signal.SIGTERM else "stop"
            )
        wake.set()

    signal.signal(signal.SIGINT, _on_signal)
    signal.signal(signal.SIGTERM, _on_signal)
    service.start()
    if args.ready_file:
        # Startup handshake for scripts, not durable state — rewritten
        # from scratch every boot.
        with open(args.ready_file, "w", encoding="utf-8") as handle:  # repro-lint: disable=RPL010 -- ephemeral ready-file handshake, not persisted service state
            handle.write(f"{server.label}\n")
    print(
        f"service listening on {server.label} with {args.workers} "
        f"worker(s), queue cap {args.queue_cap}, cache "
        f"{'off' if cache is None else cache.root}, state "
        f"{args.state_dir or 'off'}",
        file=sys.stderr,
    )
    http_thread = threading.Thread(
        target=server.serve_forever, name="repro-service-http", daemon=True
    )
    http_thread.start()
    try:
        wake.wait()
    finally:
        if shutdown["mode"] == "drain":
            print(
                f"draining: refusing new jobs, finishing in-flight work "
                f"(grace {args.drain_grace:g}s)",
                file=sys.stderr,
            )
            leaked = service.drain()
        else:
            print("shutting down", file=sys.stderr)
            leaked = service.stop()
        server.shutdown()
        http_thread.join(timeout=5.0)
        server.server_close()
        if leaked:
            print(
                f"warning: {leaked} worker thread(s) outlived the "
                "shutdown join and were abandoned",
                file=sys.stderr,
            )
    return 0
