"""Job records, the job registry, and service counters.

A job is the unit clients poll: it moves ``queued -> running -> done``
(or ``failed``), carries its result document once finished, and keeps a
structured error payload — the same ``error_type`` vocabulary batch
callers get from :func:`repro.pool.batch.error_kind` — when it does not.
The registry is the one lock-guarded map from job id to record; handler
threads and queue workers never touch a :class:`Job` directly, they go
through the registry so reads always see a consistent record.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
from typing import TYPE_CHECKING, Any

from repro.pool.batch import error_kind
from repro.pool.errors import PoisonTaskError

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.admission import ValidatedJob

__all__ = ["JOB_STATES", "Job", "JobRegistry", "ServiceMetrics",
           "error_payload"]

JOB_STATES = ("queued", "running", "done", "failed")


def error_payload(value: BaseException) -> dict[str, Any]:
    """The structured error document a failed job carries.

    Uses the pool's shared failure vocabulary, and attaches the full
    quarantine evidence for poison tasks, so service clients can triage
    a dead job exactly like batch users triage a dead slot.
    """
    payload: dict[str, Any] = {
        "error": str(value),
        "error_type": error_kind(value),
    }
    if isinstance(value, PoisonTaskError):
        payload["report"] = value.report.to_json()
    return payload


@dataclasses.dataclass
class Job:
    """One submission's lifecycle record.

    ``document`` is the finished result document (also what the cache
    stores); ``validated`` is the execution payload and never leaves the
    process.  Mutated only under the registry lock.
    """

    id: str
    method: str
    instance_name: str
    key: str
    state: str = "queued"
    cached: bool = False
    document: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    duration_s: float | None = None
    idempotency_key: str | None = None
    #: True for jobs re-enqueued from the journal at boot; their first
    #: execution step re-checks the result cache, so a job that finished
    #: just before the crash becomes a cache hit instead of a re-solve.
    recovered: bool = False
    validated: "ValidatedJob | None" = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def status_doc(self) -> dict[str, Any]:
        """The client-facing status body for ``GET /v1/jobs/{id}``."""
        doc: dict[str, Any] = {
            "job_id": self.id,
            "state": self.state,
            "cached": self.cached,
            "method": self.method,
            "instance": self.instance_name,
            "key": self.key,
        }
        if self.duration_s is not None:
            doc["duration_s"] = self.duration_s
        if self.error is not None:
            doc["error"] = self.error
        return doc


class JobRegistry:
    """Thread-safe id -> :class:`Job` map with sequential ids.

    ``max_terminal_jobs`` bounds memory under sustained traffic: once
    more than that many *terminal* (``done``/``failed``) jobs are
    resident, the oldest-finished are evicted from the map (never
    queued/running jobs — those are always resident).  Evicted ids are
    not gone: the service serves them read-through from the journal, so
    eviction trades memory for a disk seek, never for a 404.
    """

    def __init__(self, max_terminal_jobs: int | None = None) -> None:
        if max_terminal_jobs is not None and max_terminal_jobs < 1:
            raise ValueError(
                f"max_terminal_jobs must be >= 1, got {max_terminal_jobs}"
            )
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._seq = 0  # repro-lint: guarded-by=_lock
        self._max_terminal = max_terminal_jobs
        #: Terminal job ids, oldest-finished first (the eviction order).
        self._terminal_order: collections.deque[str] = collections.deque()
        self._terminal_ids: set[str] = set()
        self.evicted = 0  # repro-lint: guarded-by=_lock

    def create(self, **fields: Any) -> Job:
        with self._lock:
            self._seq += 1
            job = Job(id=f"j{self._seq:06d}", **fields)
            self._jobs[job.id] = job
            self._note_terminal(job)
            return job

    def restore(self, job: Job) -> None:
        """Re-insert a journal-recovered job under its original id."""
        with self._lock:
            self._jobs[job.id] = job
            self._note_terminal(job)

    def reserve(self, seq: int) -> None:
        """Advance the id sequence past ``seq`` (journal replay) so new
        ids never collide with recovered ones."""
        with self._lock:
            self._seq = max(self._seq, seq)

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def discard(self, job_id: str) -> None:
        """Forget a job that was never admitted (queue-full rollback)."""
        with self._lock:
            self._jobs.pop(job_id, None)

    def update(self, job_id: str, **fields: Any) -> None:
        with self._lock:
            job = self._jobs[job_id]
            for name, value in fields.items():
                setattr(job, name, value)
            self._note_terminal(job)

    def _note_terminal(self, job: Job) -> None:
        """Track terminal transitions and evict past the retention cap.

        Called under the lock.  A job enters the terminal order exactly
        once (state transitions never leave ``done``/``failed``).
        """
        if job.state not in ("done", "failed"):
            return
        if job.id in self._terminal_ids:
            return
        self._terminal_ids.add(job.id)
        self._terminal_order.append(job.id)
        if self._max_terminal is None:
            return
        while len(self._terminal_order) > self._max_terminal:
            oldest = self._terminal_order.popleft()
            self._terminal_ids.discard(oldest)
            if self._jobs.pop(oldest, None) is not None:
                self.evicted += 1

    def eviction_stats(self) -> dict[str, int]:
        """Evicted-so-far and currently-retained terminal counts."""
        with self._lock:
            return {
                "evicted": self.evicted,
                "terminal_retained": len(self._terminal_order),
            }

    def status(self, job_id: str) -> dict[str, Any] | None:
        with self._lock:
            job = self._jobs.get(job_id)
            return None if job is None else job.status_doc()

    def result_view(self, job_id: str) -> tuple[str, dict[str, Any]] | None:
        """``(state, body)`` for the result endpoint, read atomically.

        ``body`` is the result document when done, the status document
        (carrying the structured error) otherwise.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state == "done" and job.document is not None:
                return job.state, job.document
            return job.state, job.status_doc()

    def counts(self) -> dict[str, int]:
        """Jobs per state (all states present, zeros included)."""
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts


class ServiceMetrics:
    """Monotonic named counters behind one lock (``GET /metrics``)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}

    def increment(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._counters.items()))
