"""Job records, the job registry, and service counters.

A job is the unit clients poll: it moves ``queued -> running -> done``
(or ``failed``), carries its result document once finished, and keeps a
structured error payload — the same ``error_type`` vocabulary batch
callers get from :func:`repro.pool.batch.error_kind` — when it does not.
The registry is the one lock-guarded map from job id to record; handler
threads and queue workers never touch a :class:`Job` directly, they go
through the registry so reads always see a consistent record.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import TYPE_CHECKING, Any

from repro.pool.batch import error_kind
from repro.pool.errors import PoisonTaskError

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.admission import ValidatedJob

__all__ = ["JOB_STATES", "Job", "JobRegistry", "ServiceMetrics",
           "error_payload"]

JOB_STATES = ("queued", "running", "done", "failed")


def error_payload(value: BaseException) -> dict[str, Any]:
    """The structured error document a failed job carries.

    Uses the pool's shared failure vocabulary, and attaches the full
    quarantine evidence for poison tasks, so service clients can triage
    a dead job exactly like batch users triage a dead slot.
    """
    payload: dict[str, Any] = {
        "error": str(value),
        "error_type": error_kind(value),
    }
    if isinstance(value, PoisonTaskError):
        payload["report"] = value.report.to_json()
    return payload


@dataclasses.dataclass
class Job:
    """One submission's lifecycle record.

    ``document`` is the finished result document (also what the cache
    stores); ``validated`` is the execution payload and never leaves the
    process.  Mutated only under the registry lock.
    """

    id: str
    method: str
    instance_name: str
    key: str
    state: str = "queued"
    cached: bool = False
    document: dict[str, Any] | None = None
    error: dict[str, Any] | None = None
    duration_s: float | None = None
    validated: "ValidatedJob | None" = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def status_doc(self) -> dict[str, Any]:
        """The client-facing status body for ``GET /v1/jobs/{id}``."""
        doc: dict[str, Any] = {
            "job_id": self.id,
            "state": self.state,
            "cached": self.cached,
            "method": self.method,
            "instance": self.instance_name,
            "key": self.key,
        }
        if self.duration_s is not None:
            doc["duration_s"] = self.duration_s
        if self.error is not None:
            doc["error"] = self.error
        return doc


class JobRegistry:
    """Thread-safe id -> :class:`Job` map with sequential ids."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        self._seq = 0

    def create(self, **fields: Any) -> Job:
        with self._lock:
            self._seq += 1
            job = Job(id=f"j{self._seq:06d}", **fields)
            self._jobs[job.id] = job
            return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def discard(self, job_id: str) -> None:
        """Forget a job that was never admitted (queue-full rollback)."""
        with self._lock:
            self._jobs.pop(job_id, None)

    def update(self, job_id: str, **fields: Any) -> None:
        with self._lock:
            job = self._jobs[job_id]
            for name, value in fields.items():
                setattr(job, name, value)

    def status(self, job_id: str) -> dict[str, Any] | None:
        with self._lock:
            job = self._jobs.get(job_id)
            return None if job is None else job.status_doc()

    def result_view(self, job_id: str) -> tuple[str, dict[str, Any]] | None:
        """``(state, body)`` for the result endpoint, read atomically.

        ``body`` is the result document when done, the status document
        (carrying the structured error) otherwise.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state == "done" and job.document is not None:
                return job.state, job.document
            return job.state, job.status_doc()

    def counts(self) -> dict[str, int]:
        """Jobs per state (all states present, zeros included)."""
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts


class ServiceMetrics:
    """Monotonic named counters behind one lock (``GET /metrics``)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}

    def increment(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(sorted(self._counters.items()))
