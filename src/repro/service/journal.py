"""The write-ahead job journal: durable service state, replayed at boot.

PR 8's registry was purely in-memory — a crash or restart silently lost
every submitted job, and clients kept polling ids that could never
resolve.  The journal closes that hole: every job state transition is
appended to one JSONL file *before* the transition becomes observable,
each line guarded by the same ``record_crc`` discipline as checkpoint
lines and cache entries, each append flushed-and-fsync'd through the
:func:`repro.resilience.atomic.append_text` / ``fsync_path`` pair
(write serialized under the journal lock, sync outside it).  Because the
repo's solvers are deterministic pure functions of the cache key, the
journal does not need to persist partial compute: re-running an
interrupted job is *bit-identical* to the run that was lost, so replay
only has to remember what was asked for and what finished.

Event vocabulary (one JSON object per line)::

    submitted    job admitted: original request body, cache key,
                 idempotency key, admission sequence
    running      a worker picked the job up
    done         terminal: the full result document (also in the cache)
    failed       terminal: the structured error payload
    interrupted  drain marked the job for re-enqueue at next boot

On restart, :meth:`JobJournal.replay` reads the file once: corrupt or
truncated lines (bitrot, a torn tail from a crash mid-append, schema
skew) are quarantined **verbatim** to a ``.quarantine`` sidecar exactly
like cache entries, intact jobs are reconstructed — terminal jobs with a
byte offset for seek-based read-through of their stored documents,
non-terminal jobs (``queued`` / ``running`` / ``interrupted``) in their
original admission order for idempotent re-execution through the
content-addressed cache.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from pathlib import Path
from typing import Any

from repro.resilience.atomic import (
    append_text,
    durable_append_text,
    fsync_path,
)
from repro.resilience.checkpoint import record_crc

__all__ = [
    "JOURNAL_SCHEMA",
    "JOURNAL_EVENTS",
    "TERMINAL_EVENTS",
    "JobJournal",
    "JournalRecovery",
    "RecoveredJob",
]

#: Bump when the line format changes; replay treats other schemas as
#: corrupt (quarantined, job re-run) rather than guessing.
JOURNAL_SCHEMA = 1

JOURNAL_EVENTS = ("submitted", "running", "done", "failed", "interrupted")
TERMINAL_EVENTS = ("done", "failed")


@dataclasses.dataclass
class RecoveredJob:
    """One job reconstructed from the journal at replay time.

    ``request`` is the original submission body (only present once a
    ``submitted`` line survived — a job whose submitted line was lost to
    corruption cannot be re-run and is dropped from recovery).  For
    terminal jobs ``terminal_offset`` points at the byte where the
    ``done``/``failed`` line starts, so documents are read through on
    demand instead of being held in memory.
    """

    job_id: str
    seq: int
    state: str = "queued"
    request: dict[str, Any] | None = None
    idempotency_key: str | None = None
    key: str = ""
    method: str = ""
    instance_name: str = ""
    terminal_offset: int | None = None
    cached: bool = False


@dataclasses.dataclass
class JournalRecovery:
    """What :meth:`JobJournal.replay` reconstructs.

    ``pending`` preserves original admission order — recovery re-enqueues
    exactly that order so deterministic fault plans and client
    expectations survive the restart.  ``max_seq`` lets the registry
    resume its id sequence past every journaled job.
    """

    terminal: list[RecoveredJob] = dataclasses.field(default_factory=list)
    pending: list[RecoveredJob] = dataclasses.field(default_factory=list)
    idempotency: dict[str, str] = dataclasses.field(default_factory=dict)
    max_seq: int = 0
    quarantined_lines: int = 0


class JobJournal:
    """Append-only, CRC-guarded, fsync'd journal of job state transitions.

    Thread-safe: the append *write* serializes under one lock so lines
    never interleave and offsets are exact, while the fsync runs after
    release (a later sync covers every earlier write, so each record is
    still durable before its append returns) — the lock is never held
    across disk latency.  The offset index is only mutated under the
    same lock.  Reads for
    read-through seek directly to an indexed offset and re-verify the
    line's CRC, so even an index pointing into a corrupted region
    degrades to "not found", never to a wrong answer.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        #: Rejected lines, preserved verbatim (evidence, not data).
        self.quarantine_path = self.path.with_name(
            self.path.name + ".quarantine"
        )
        self._lock = threading.Lock()
        #: job id -> byte offset of its terminal (done/failed) line.
        self._terminal_offsets: dict[str, int] = {}
        #: job id -> byte offset of its submitted line (status fields).
        self._submitted_offsets: dict[str, int] = {}
        self.appends = 0

    # -- appends --------------------------------------------------------

    def _append(self, record: dict[str, Any]) -> int:
        record["schema"] = JOURNAL_SCHEMA
        record["crc"] = record_crc(record)
        line = json.dumps(record, sort_keys=True) + "\n"
        # Only the write is serialized under the lock (line ordering and
        # offset correctness need that); the fsync happens *after*
        # release, because fsync flushes the whole file — every append
        # that landed before this sync point is covered by it — so each
        # caller still returns only once its own bytes are durable,
        # while concurrent appenders no longer queue behind the disk
        # (lint rule RPL013: no blocking call under a lock).
        with self._lock:
            offset = append_text(self.path, line)
            self.appends += 1
        fsync_path(self.path)
        return offset

    def record_submitted(
        self,
        job_id: str,
        seq: int,
        request: dict[str, Any],
        key: str,
        method: str,
        instance_name: str,
        idempotency_key: str | None = None,
    ) -> None:
        offset = self._append({
            "event": "submitted",
            "job_id": job_id,
            "seq": seq,
            "request": request,
            "key": key,
            "method": method,
            "instance": instance_name,
            "idempotency_key": idempotency_key,
        })
        with self._lock:
            self._submitted_offsets[job_id] = offset

    def record_running(self, job_id: str) -> None:
        self._append({"event": "running", "job_id": job_id})

    def record_done(
        self,
        job_id: str,
        document: dict[str, Any],
        cached: bool,
        duration_s: float | None,
    ) -> None:
        offset = self._append({
            "event": "done",
            "job_id": job_id,
            "cached": cached,
            "duration_s": duration_s,
            "document": document,
        })
        with self._lock:
            self._terminal_offsets[job_id] = offset

    def record_failed(
        self,
        job_id: str,
        error: dict[str, Any],
        duration_s: float | None,
    ) -> None:
        offset = self._append({
            "event": "failed",
            "job_id": job_id,
            "duration_s": duration_s,
            "error": error,
        })
        with self._lock:
            self._terminal_offsets[job_id] = offset

    def record_interrupted(self, job_id: str) -> None:
        self._append({"event": "interrupted", "job_id": job_id})

    # -- replay ---------------------------------------------------------

    def replay(self) -> JournalRecovery:
        """Reconstruct job state from the journal (boot-time, one pass).

        Corrupt lines are quarantined verbatim and counted; a job whose
        *terminal* line was corrupted degrades to pending (it re-runs —
        deterministically identical), a job whose *submitted* line was
        corrupted is unrecoverable and dropped entirely.
        """
        recovery = JournalRecovery()
        if not self.path.exists():
            return recovery
        jobs: dict[str, RecoveredJob] = {}
        order: list[str] = []
        rejected: list[str] = []
        offset = 0
        with open(self.path, "rb") as handle:
            for raw in handle:
                line_offset = offset
                offset += len(raw)
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                record = self._decode(line)
                if record is None:
                    rejected.append(line)
                    continue
                job_id = record["job_id"]
                job = jobs.get(job_id)
                if job is None:
                    job = RecoveredJob(job_id=job_id, seq=0)
                    jobs[job_id] = job
                    order.append(job_id)
                event = record["event"]
                if event == "submitted":
                    # Fills identity fields only — never resets state: a
                    # racing worker may have journaled running/done a
                    # moment before the admission thread's submitted
                    # line landed.
                    job.seq = int(record.get("seq", 0))
                    job.request = record.get("request")
                    job.idempotency_key = record.get("idempotency_key")
                    job.key = str(record.get("key", ""))
                    job.method = str(record.get("method", ""))
                    job.instance_name = str(record.get("instance", ""))
                    with self._lock:
                        self._submitted_offsets[job_id] = line_offset
                elif event == "running":
                    job.state = "running"
                elif event == "done":
                    job.state = "done"
                    job.cached = bool(record.get("cached", False))
                    job.terminal_offset = line_offset
                elif event == "failed":
                    job.state = "failed"
                    job.terminal_offset = line_offset
                elif event == "interrupted":
                    job.state = "interrupted"
        if rejected:
            recovery.quarantined_lines = len(rejected)
            durable_append_text(
                self.quarantine_path, "\n".join(rejected) + "\n"
            )
        for job_id in order:
            job = jobs[job_id]
            recovery.max_seq = max(recovery.max_seq, job.seq)
            if job.request is None:
                # The submitted line is gone (quarantined): there is no
                # request to re-run and no status fields to serve.
                continue
            if job.idempotency_key:
                recovery.idempotency[job.idempotency_key] = job_id
            if job.state in TERMINAL_EVENTS and job.terminal_offset is not None:
                with self._lock:
                    self._terminal_offsets[job_id] = job.terminal_offset
                recovery.terminal.append(job)
            else:
                # queued / running / interrupted — or a terminal job whose
                # terminal line was corrupted: all re-run identically.
                job.state = "queued"
                recovery.pending.append(job)
        return recovery

    # -- read-through ---------------------------------------------------

    def lookup(self, job_id: str) -> dict[str, Any] | None:
        """The reconstructed terminal view of a journaled job, or ``None``.

        Serves status and result read-through for jobs evicted from the
        in-memory registry: seeks straight to the indexed ``submitted``
        and terminal lines (no scan), re-verifying each line's CRC.
        """
        with self._lock:
            submitted_offset = self._submitted_offsets.get(job_id)
            terminal_offset = self._terminal_offsets.get(job_id)
        if submitted_offset is None or terminal_offset is None:
            return None
        submitted = self._read_at(submitted_offset)
        terminal = self._read_at(terminal_offset)
        if (
            submitted is None or terminal is None
            or submitted.get("job_id") != job_id
            or terminal.get("job_id") != job_id
            or terminal.get("event") not in TERMINAL_EVENTS
        ):
            return None
        view: dict[str, Any] = {
            "job_id": job_id,
            "state": terminal["event"],
            "cached": bool(terminal.get("cached", False)),
            "method": submitted.get("method", ""),
            "instance": submitted.get("instance", ""),
            "key": submitted.get("key", ""),
        }
        if terminal.get("duration_s") is not None:
            view["duration_s"] = terminal["duration_s"]
        if terminal["event"] == "done":
            view["document"] = terminal.get("document")
        else:
            view["error"] = terminal.get("error")
        return view

    def _read_at(self, offset: int) -> dict[str, Any] | None:
        try:
            with open(self.path, "rb") as handle:
                handle.seek(offset)
                raw = handle.readline()
        except OSError:
            return None
        return self._decode(raw.decode("utf-8", errors="replace").strip())

    @staticmethod
    def _decode(line: str) -> dict[str, Any] | None:
        """Validate one journal line end to end; ``None`` = corrupt."""
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict):
            return None
        if record.get("schema") != JOURNAL_SCHEMA:
            return None
        if record.get("event") not in JOURNAL_EVENTS:
            return None
        if not isinstance(record.get("job_id"), str):
            return None
        crc = record.get("crc")
        if not isinstance(crc, str) or crc != record_crc(record):
            return None
        return record
