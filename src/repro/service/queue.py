"""The bounded async job queue and its worker threads.

Admission's 429 contract is enforced by construction here: the queue is
a ``queue.Queue`` with a hard ``maxsize``, and enqueueing is always
``put_nowait`` — a full queue surfaces as an immediate refusal the HTTP
layer can map to 429, never as a handler thread blocking (which would
silently convert back-pressure into client-visible latency and
eventually exhaust the connection pool).

Each worker thread owns one
:class:`~repro.pool.dispatch.SupervisedDispatch`, so every admitted job
runs in a fresh supervised child process with the pool's full guarantee
set — and so :meth:`JobDispatcher.stop` can *cancel* in-flight jobs:
shutdown reaps running children within a dispatch tick instead of
waiting out a long solve.
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING, Callable

from repro.pool.dispatch import SupervisedDispatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.jobs import Job

__all__ = ["JobDispatcher"]

#: How long a worker blocks on an empty queue before re-checking the
#: stop flag; bounds shutdown latency for idle workers.
WORKER_TICK_S = 0.1


class JobDispatcher:
    """Run queued jobs on ``workers`` threads, one supervised child each.

    ``runner(job, dispatch, seq)`` executes one job on the worker's
    dispatch; ``seq`` is the job's admission sequence number (0-based),
    which doubles as the task index for deterministic fault plans.  The
    runner owns all error recording — it must not raise.
    """

    def __init__(
        self,
        runner: "Callable[[Job, SupervisedDispatch, int], None]",
        workers: int = 1,
        queue_cap: int = 16,
        context: str | None = None,
        term_grace_s: float = 0.5,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_cap < 1:
            raise ValueError(f"queue_cap must be >= 1, got {queue_cap}")
        self.workers = workers
        self.queue_cap = queue_cap
        self._runner = runner
        self._queue: "queue.Queue[tuple[int, Job]]" = queue.Queue(
            maxsize=queue_cap
        )
        self._stop = threading.Event()
        self._seq_lock = threading.Lock()
        self._seq = 0
        self._threads: list[threading.Thread] = []
        self._dispatches: list[SupervisedDispatch] = []
        self._context = context
        self._term_grace_s = term_grace_s

    def start(self) -> None:
        for i in range(self.workers):
            dispatch = SupervisedDispatch(
                context=self._context, term_grace_s=self._term_grace_s
            )
            thread = threading.Thread(
                target=self._worker_loop,
                args=(dispatch,),
                name=f"repro-service-worker-{i}",
                daemon=True,
            )
            self._dispatches.append(dispatch)
            self._threads.append(thread)
            thread.start()

    def try_enqueue(self, job: "Job") -> bool:
        """Admit one job without blocking; ``False`` = full (429) or
        stopping."""
        if self._stop.is_set():
            return False
        with self._seq_lock:
            # Sequence numbers are assigned under the same lock as the
            # put, so admitted jobs are numbered in admission order —
            # what makes KIND:SEQ fault plans deterministic.
            try:
                self._queue.put_nowait((self._seq, job))
            except queue.Full:
                return False
            self._seq += 1
        return True

    def depth(self) -> int:
        """Jobs admitted but not yet picked up by a worker."""
        return self._queue.qsize()

    def stop(
        self, abandon: "Callable[[Job], None] | None" = None
    ) -> None:
        """Stop accepting, cancel in-flight children, drain the backlog.

        Queued-but-unstarted jobs are handed to ``abandon`` (the service
        marks them failed with a shutdown error) so no client polls a
        job that can never finish.
        """
        self._stop.set()
        for dispatch in self._dispatches:
            dispatch.cancel()
        while True:
            try:
                _, job = self._queue.get_nowait()
            except queue.Empty:
                break
            if abandon is not None:
                abandon(job)
            self._queue.task_done()
        for thread in self._threads:
            thread.join(timeout=10.0)

    def _worker_loop(self, dispatch: SupervisedDispatch) -> None:
        while not self._stop.is_set():
            try:
                seq, job = self._queue.get(timeout=WORKER_TICK_S)
            except queue.Empty:
                continue
            try:
                self._runner(job, dispatch, seq)
            finally:
                self._queue.task_done()
