"""The bounded async job queue and its worker threads.

Admission's 429 contract is enforced by construction here: enqueueing
never blocks — the depth check and the put happen under the admission
lock, so a full queue surfaces as an immediate refusal the HTTP layer
can map to 429, never as a handler thread blocking (which would
silently convert back-pressure into client-visible latency and
eventually exhaust the connection pool).  Journal recovery uses
:meth:`JobDispatcher.enqueue_recovered`, which bypasses the cap: jobs
that were *already admitted* before a crash must not bounce off their
own backlog at boot.

Each worker thread owns one
:class:`~repro.pool.dispatch.SupervisedDispatch`, so every admitted job
runs in a fresh supervised child process with the pool's full guarantee
set.  Shutdown comes in two shapes: :meth:`JobDispatcher.stop` *cancels*
in-flight jobs (children reaped within a dispatch tick — the Ctrl-C
path), while :meth:`JobDispatcher.drain` lets in-flight jobs finish
within a grace budget before escalating to cancellation (the SIGTERM
path).  Both report worker threads that outlived the join, so a wedged
thread is a counted, logged fact instead of a silent leak.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import TYPE_CHECKING, Callable

from repro.core.engine.config import check_timeout
from repro.pool.dispatch import SupervisedDispatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.jobs import Job

__all__ = ["JobDispatcher"]

#: How long a worker blocks on an empty queue before re-checking the
#: stop flag; bounds shutdown latency for idle workers.
WORKER_TICK_S = 0.1


class JobDispatcher:
    """Run queued jobs on ``workers`` threads, one supervised child each.

    ``runner(job, dispatch, seq)`` executes one job on the worker's
    dispatch; ``seq`` is the job's admission sequence number (0-based),
    which doubles as the task index for deterministic fault plans.  The
    runner owns all error recording — it must not raise.
    ``join_timeout_s`` bounds how long shutdown waits for each worker
    thread after its work is cancelled; threads still alive past it are
    counted and reported, never waited on forever.
    """

    def __init__(
        self,
        runner: "Callable[[Job, SupervisedDispatch, int], None]",
        workers: int = 1,
        queue_cap: int = 16,
        context: str | None = None,
        term_grace_s: float = 0.5,
        join_timeout_s: float = 10.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_cap < 1:
            raise ValueError(f"queue_cap must be >= 1, got {queue_cap}")
        check_timeout(join_timeout_s, "join_timeout_s")
        self.workers = workers
        self.queue_cap = queue_cap
        self.join_timeout_s = join_timeout_s
        self._runner = runner
        # Unbounded internally: the cap is enforced in try_enqueue (under
        # the admission lock) so recovery can re-admit a pre-crash
        # backlog larger than the cap without deadlocking on put().
        self._queue: "queue.Queue[tuple[int, Job]]" = queue.Queue()
        self._stop = threading.Event()
        self._seq_lock = threading.Lock()
        self._seq = 0  # repro-lint: guarded-by=_seq_lock
        self._threads: list[threading.Thread] = []
        self._dispatches: list[SupervisedDispatch] = []
        self._context = context
        self._term_grace_s = term_grace_s

    def start(self) -> None:
        for i in range(self.workers):
            dispatch = SupervisedDispatch(
                context=self._context, term_grace_s=self._term_grace_s
            )
            thread = threading.Thread(
                target=self._worker_loop,
                args=(dispatch,),
                name=f"repro-service-worker-{i}",
                daemon=True,
            )
            self._dispatches.append(dispatch)
            self._threads.append(thread)
            thread.start()

    def try_enqueue(self, job: "Job") -> bool:
        """Admit one job without blocking; ``False`` = full (429) or
        stopping."""
        if self._stop.is_set():
            return False
        with self._seq_lock:
            # Sequence numbers are assigned under the same lock as the
            # put, so admitted jobs are numbered in admission order —
            # what makes KIND:SEQ fault plans deterministic.  The depth
            # check shares the lock, so admissions serialize against
            # each other and the cap is never oversubscribed by a race
            # between two handler threads.
            if self._queue.qsize() >= self.queue_cap:
                return False
            self._queue.put_nowait((self._seq, job))
            self._seq += 1
        return True

    def enqueue_recovered(self, job: "Job") -> None:
        """Re-admit a journal-recovered job, bypassing the cap.

        Recovery runs before the workers start, in original admission
        order; the backlog may legitimately exceed ``queue_cap`` (the
        crash froze jobs both queued *and* running), and bouncing an
        already-admitted job would break the recovery contract that
        every pre-crash id resolves.
        """
        with self._seq_lock:
            self._queue.put_nowait((self._seq, job))
            self._seq += 1

    def depth(self) -> int:
        """Jobs admitted but not yet picked up by a worker."""
        return self._queue.qsize()

    def alive_workers(self) -> int:
        """Worker threads currently alive (0 before :meth:`start`)."""
        return sum(1 for thread in self._threads if thread.is_alive())

    def stop(
        self, abandon: "Callable[[Job], None] | None" = None
    ) -> int:
        """Stop accepting, cancel in-flight children, drain the backlog.

        Queued-but-unstarted jobs are handed to ``abandon`` (the service
        marks them failed with a shutdown error) so no client polls a
        job that can never finish.  Returns the number of worker threads
        that outlived the join — 0 on a clean shutdown.
        """
        self._stop.set()
        for dispatch in self._dispatches:
            dispatch.cancel()
        self._drain_backlog(abandon)
        return self._join_threads(self.join_timeout_s)

    def drain(
        self,
        grace_s: float,
        abandon: "Callable[[Job], None] | None" = None,
    ) -> int:
        """Graceful drain: finish in-flight jobs, abandon the backlog.

        Stops admission immediately and hands every queued-but-unstarted
        job to ``abandon`` (the service journals them ``interrupted``
        for next-boot re-enqueue).  In-flight jobs get ``grace_s``
        seconds to finish; past that the remaining children are
        cancelled exactly like :meth:`stop`.  Returns the number of
        worker threads that outlived the final join.
        """
        check_timeout(grace_s, "grace_s")
        self._stop.set()
        self._drain_backlog(abandon)
        still_running = self._join_threads(grace_s)
        if still_running:
            # Grace expired: escalate to the cancel path for whatever is
            # still in flight (their jobs are journaled interrupted by
            # the runner, so they re-run at next boot).
            for dispatch in self._dispatches:
                dispatch.cancel()
            still_running = self._join_threads(self.join_timeout_s)
        return still_running

    def _drain_backlog(
        self, abandon: "Callable[[Job], None] | None"
    ) -> None:
        while True:
            try:
                _, job = self._queue.get_nowait()
            except queue.Empty:
                break
            if abandon is not None:
                abandon(job)
            self._queue.task_done()

    def _join_threads(self, timeout_s: float) -> int:
        """Join every worker within one shared deadline; count survivors."""
        deadline = time.monotonic() + timeout_s
        for thread in self._threads:
            if not thread.is_alive():
                continue
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        return self.alive_workers()

    def _worker_loop(self, dispatch: SupervisedDispatch) -> None:
        while not self._stop.is_set():
            try:
                seq, job = self._queue.get(timeout=WORKER_TICK_S)
            except queue.Empty:
                continue
            try:
                self._runner(job, dispatch, seq)
            finally:
                self._queue.task_done()
