"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

# Hypothesis profiles: CI default is moderate; REPRO_HYPOTHESIS_PROFILE=dev
# for quicker local iteration.
settings.register_profile(
    "ci",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "ci"))


# ----------------------------------------------------------------------
# Lock-order sanitizer (REPRO_TSAN=1)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session", autouse=True)
def _lock_sanitizer():
    """Run the whole suite under the runtime lock-order sanitizer.

    With ``REPRO_TSAN=1`` every ``threading.Lock``/``RLock``/``Condition``
    created by the service and pool modules is instrumented: a lock-order
    inversion or a ``Thread.join`` under a held lock raises instead of
    deadlocking.  Installed once for the session, *before* any fixture
    constructs a service, so every lock those modules create is wrapped.
    Off by default — the instrumented run must be byte-identical to the
    plain one, and tier-1 runs both ways in CI.
    """
    if os.environ.get("REPRO_TSAN") != "1":
        yield
        return
    from repro.lint import sanitizer

    sanitizer.install()
    yield
    sanitizer.uninstall()


# ----------------------------------------------------------------------
# Instance strategies
# ----------------------------------------------------------------------
@st.composite
def cdd_instances(draw, min_n: int = 1, max_n: int = 8,
                  allow_zero_penalties: bool = True):
    """Random small CDD instances (restricted and unrestricted mixes)."""
    n = draw(st.integers(min_n, max_n))
    p = draw(
        st.lists(st.integers(1, 20), min_size=n, max_size=n)
    )
    low = 0 if allow_zero_penalties else 1
    a = draw(st.lists(st.integers(low, 10), min_size=n, max_size=n))
    b = draw(st.lists(st.integers(low, 15), min_size=n, max_size=n))
    h = draw(st.floats(0.05, 1.6, allow_nan=False))
    d = float(int(h * sum(p)))
    return CDDInstance(
        processing=np.asarray(p, float),
        alpha=np.asarray(a, float),
        beta=np.asarray(b, float),
        due_date=d,
        name=f"hyp_cdd_n{n}",
    )


@st.composite
def ucddcp_instances(draw, min_n: int = 1, max_n: int = 8):
    """Random small UCDDCP instances (always unrestricted)."""
    n = draw(st.integers(min_n, max_n))
    p = draw(st.lists(st.integers(1, 20), min_size=n, max_size=n))
    m = [draw(st.integers(1, pi)) for pi in p]
    a = draw(st.lists(st.integers(0, 10), min_size=n, max_size=n))
    b = draw(st.lists(st.integers(0, 15), min_size=n, max_size=n))
    g = draw(st.lists(st.integers(0, 12), min_size=n, max_size=n))
    slack = draw(st.integers(0, 30))
    d = float(sum(p) + slack)
    return UCDDCPInstance(
        processing=np.asarray(p, float),
        min_processing=np.asarray(m, float),
        alpha=np.asarray(a, float),
        beta=np.asarray(b, float),
        gamma=np.asarray(g, float),
        due_date=d,
        name=f"hyp_ucddcp_n{n}",
    )


@st.composite
def permutations_of(draw, n: int):
    """A random permutation of 0..n-1."""
    perm = draw(st.permutations(list(range(n))))
    return np.asarray(perm, dtype=np.intp)


# ----------------------------------------------------------------------
# Plain fixtures
# ----------------------------------------------------------------------
@pytest.fixture()
def paper_cdd() -> CDDInstance:
    """The worked example of Table I with the CDD due date d=16."""
    return CDDInstance(
        processing=[6, 5, 2, 4, 4],
        alpha=[7, 9, 6, 9, 3],
        beta=[9, 5, 4, 3, 2],
        due_date=16.0,
        name="paper_example_cdd",
    )


@pytest.fixture()
def paper_ucddcp() -> UCDDCPInstance:
    """The worked example of Table I with the UCDDCP due date d=22."""
    return UCDDCPInstance(
        processing=[6, 5, 2, 4, 4],
        min_processing=[5, 5, 2, 3, 3],
        alpha=[7, 9, 6, 9, 3],
        beta=[9, 5, 4, 3, 2],
        gamma=[5, 4, 3, 2, 1],
        due_date=22.0,
        name="paper_example_ucddcp",
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic NumPy generator."""
    return np.random.default_rng(12345)


@pytest.fixture()
def tmp_store_path(tmp_path):
    """A temporary best-known store location."""
    return tmp_path / "bestknown.json"
