"""Diversity metrics and instrumented convergence traces."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.convergence import trace_parallel_sa
from repro.analysis.diversity import (
    distinct_fraction,
    kendall_tau_distance,
    mean_pairwise_kendall,
    positional_entropy,
)
from repro.core.parallel_sa import ParallelSAConfig
from repro.instances.biskup import biskup_instance


class TestKendallTau:
    def test_identity_is_zero(self):
        a = np.arange(8)
        assert kendall_tau_distance(a, a) == 0.0

    def test_reverse_is_one(self):
        a = np.arange(8)
        assert kendall_tau_distance(a, a[::-1]) == 1.0

    def test_symmetry(self, rng):
        a, b = rng.permutation(12), rng.permutation(12)
        assert kendall_tau_distance(a, b) == pytest.approx(
            kendall_tau_distance(b, a)
        )

    def test_single_swap(self):
        a = np.arange(5)
        b = np.array([1, 0, 2, 3, 4])
        assert kendall_tau_distance(a, b) == pytest.approx(2 / 20)

    def test_matches_bruteforce(self, rng):
        for _ in range(20):
            a, b = rng.permutation(7), rng.permutation(7)
            pos_a = np.argsort(a)
            pos_b = np.argsort(b)
            disc = 0
            for i in range(7):
                for j in range(i + 1, 7):
                    if (pos_a[i] - pos_a[j]) * (pos_b[i] - pos_b[j]) < 0:
                        disc += 1
            expected = 2 * disc / (7 * 6)
            assert kendall_tau_distance(a, b) == pytest.approx(expected)

    @given(n=st.integers(1, 2))
    def test_tiny_inputs(self, n):
        a = np.arange(n)
        assert kendall_tau_distance(a, a) == 0.0

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            kendall_tau_distance(np.arange(3), np.arange(4))


class TestPopulationMetrics:
    def test_identical_population_zero_diversity(self):
        pop = np.tile(np.arange(10), (20, 1))
        assert positional_entropy(pop) == 0.0
        assert mean_pairwise_kendall(pop) == 0.0
        assert distinct_fraction(pop) == pytest.approx(1 / 20)

    def test_random_population_high_diversity(self, rng):
        pop = np.argsort(rng.random((64, 12)), axis=1)
        assert positional_entropy(pop) > 0.5
        assert mean_pairwise_kendall(pop) > 0.3
        assert distinct_fraction(pop) == 1.0

    def test_entropy_bounded(self, rng):
        pop = np.argsort(rng.random((100, 8)), axis=1)
        h = positional_entropy(pop)
        assert 0.0 <= h <= 1.0

    def test_sampled_pairs_stable(self, rng):
        pop = np.argsort(rng.random((50, 10)), axis=1)
        a = mean_pairwise_kendall(pop, max_pairs=150, seed=1)
        b = mean_pairwise_kendall(pop, max_pairs=150, seed=2)
        assert abs(a - b) < 0.1

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            positional_entropy(np.arange(5))
        with pytest.raises(ValueError):
            mean_pairwise_kendall(np.arange(5))
        with pytest.raises(ValueError):
            distinct_fraction(np.arange(5))


class TestConvergenceTrace:
    @pytest.fixture(scope="class")
    def traces(self):
        inst = biskup_instance(20, 0.4, 1)
        base = dict(iterations=150, grid_size=2, block_size=32, seed=5)
        t_async = trace_parallel_sa(inst, ParallelSAConfig(**base))
        t_sync = trace_parallel_sa(
            inst, ParallelSAConfig(variant="sync", **base)
        )
        return t_async, t_sync

    def test_shapes(self, traces):
        t, _ = traces
        assert t.generations == 150
        assert t.best.shape == t.mean_energy.shape == (150,)
        assert t.diversity.size == t.diversity_generations.size

    def test_best_monotone(self, traces):
        for t in traces:
            assert np.all(np.diff(t.best) <= 1e-9)

    def test_best_not_worse_than_mean(self, traces):
        for t in traces:
            assert np.all(t.best <= t.mean_energy + 1e-9)

    def test_acceptance_rate_decreases_with_cooling(self, traces):
        t, _ = traces
        early = t.acceptance_rate[:30].mean()
        late = t.acceptance_rate[-30:].mean()
        assert late < early

    def test_temperature_follows_schedule(self, traces):
        t, _ = traces
        assert t.temperature[0] == pytest.approx(t.meta["t0"])
        assert np.all(np.diff(t.temperature) <= 1e-12)

    def test_sync_collapses_diversity(self, traces):
        t_async, t_sync = traces
        # The defining premature-convergence signature: the synchronous
        # broadcast collapses ensemble diversity far below the async level.
        assert t_sync.final_diversity() < t_async.final_diversity()

    def test_matches_production_driver(self):
        # The instrumented driver must reproduce the production result
        # exactly (same kernels, same RNG stream).
        from repro.core.parallel_sa import parallel_sa

        inst = biskup_instance(15, 0.6, 2)
        cfg = ParallelSAConfig(iterations=100, grid_size=2, block_size=16,
                               seed=9)
        prod = parallel_sa(inst, cfg)
        trace = trace_parallel_sa(inst, cfg)
        assert trace.best[-1] == pytest.approx(prod.objective)

    def test_summary_mentions_variant(self, traces):
        t_async, t_sync = traces
        assert "async" in t_async.summary()
        assert "sync" in t_sync.summary()


class TestDomainTrace:
    def test_domain_variant_traced(self):
        inst = biskup_instance(12, 0.4, 1)
        t = trace_parallel_sa(
            inst,
            ParallelSAConfig(iterations=60, grid_size=1, block_size=24,
                             seed=2, variant="domain"),
        )
        assert t.variant == "domain"
        assert np.all(np.diff(t.best) <= 1e-9)


class TestTraceEdgeCases:
    def test_empty_diversity_final(self):
        from repro.analysis.convergence import ConvergenceTrace

        t = ConvergenceTrace(
            variant="async",
            best=np.array([1.0]),
            mean_energy=np.array([1.0]),
            acceptance_rate=np.array([0.5]),
            temperature=np.array([1.0]),
            diversity_generations=np.array([]),
            diversity=np.array([]),
        )
        assert t.final_diversity() == 0.0
        assert t.generations == 1
