"""Threshold Accepting and Evolutionary Strategy baselines ([18]-style)."""

import numpy as np
import pytest

from repro.core.evolution import EvolutionStrategyConfig, evolution_strategy
from repro.core.threshold import ThresholdAcceptingConfig, threshold_accepting
from repro.instances.biskup import biskup_instance
from repro.problems.validation import validate_schedule
from repro.seqopt.batched import batched_cdd_objective


class TestThresholdAcceptingConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"iterations": 0},
            {"decay": 1.0},
            {"decay": 0.0},
            {"pert_size": 1},
            {"position_refresh": 0},
            {"init": "magic"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ThresholdAcceptingConfig(**kwargs)


class TestThresholdAccepting:
    def test_deterministic(self, paper_cdd):
        cfg = ThresholdAcceptingConfig(iterations=200, seed=4)
        a = threshold_accepting(paper_cdd, cfg)
        b = threshold_accepting(paper_cdd, cfg)
        assert a.objective == b.objective
        assert np.array_equal(a.best_sequence, b.best_sequence)

    def test_schedule_valid(self, paper_cdd):
        r = threshold_accepting(
            paper_cdd, ThresholdAcceptingConfig(iterations=200, seed=0)
        )
        validate_schedule(paper_cdd, r.schedule, require_no_idle=True)

    def test_beats_random(self, rng):
        inst = biskup_instance(25, 0.4, 1)
        r = threshold_accepting(
            inst, ThresholdAcceptingConfig(iterations=1500, seed=2)
        )
        rand = batched_cdd_objective(
            inst, np.argsort(rng.random((300, 25)), axis=1)
        ).mean()
        assert r.objective < rand

    def test_zero_threshold_is_greedy(self, paper_cdd):
        # theta0 = 0 with decay keeps theta at 0: pure descent, so the best
        # energy equals the final state's energy trajectory minimum.
        r = threshold_accepting(
            paper_cdd,
            ThresholdAcceptingConfig(iterations=150, seed=1, theta0=0.0,
                                     record_history=True),
        )
        assert np.all(np.diff(r.history) <= 0)

    def test_history_monotone(self, paper_cdd):
        r = threshold_accepting(
            paper_cdd,
            ThresholdAcceptingConfig(iterations=100, seed=0,
                                     record_history=True),
        )
        assert r.history is not None
        assert np.all(np.diff(r.history) <= 0)
        assert r.history[-1] == r.objective

    def test_ucddcp(self, paper_ucddcp):
        r = threshold_accepting(
            paper_ucddcp, ThresholdAcceptingConfig(iterations=300, seed=0)
        )
        validate_schedule(paper_ucddcp, r.schedule, require_no_idle=True)

    def test_vshape_init(self, paper_cdd):
        r = threshold_accepting(
            paper_cdd,
            ThresholdAcceptingConfig(iterations=100, seed=0, init="vshape"),
        )
        assert r.objective > 0


class TestEvolutionStrategyConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"generations": 0},
            {"mu": 0},
            {"mu": 10, "lam": 5},
            {"pert_size": 1},
            {"max_mutations": 0},
            {"init": "magic"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            EvolutionStrategyConfig(**kwargs)


class TestEvolutionStrategy:
    def test_deterministic(self, paper_cdd):
        cfg = EvolutionStrategyConfig(generations=30, mu=5, lam=15, seed=6)
        a = evolution_strategy(paper_cdd, cfg)
        b = evolution_strategy(paper_cdd, cfg)
        assert a.objective == b.objective

    def test_schedule_valid(self, paper_cdd):
        r = evolution_strategy(
            paper_cdd, EvolutionStrategyConfig(generations=30, seed=0)
        )
        validate_schedule(paper_cdd, r.schedule, require_no_idle=True)

    def test_elitist_history_monotone(self, paper_cdd):
        r = evolution_strategy(
            paper_cdd,
            EvolutionStrategyConfig(generations=40, seed=1,
                                    record_history=True),
        )
        assert r.history is not None
        assert np.all(np.diff(r.history) <= 0)  # "+"-selection is elitist

    def test_finds_small_optimum(self, paper_cdd):
        from repro.seqopt.exact import brute_force_cdd

        r = evolution_strategy(
            paper_cdd, EvolutionStrategyConfig(generations=80, mu=10,
                                               lam=40, seed=2)
        )
        assert r.objective == pytest.approx(
            brute_force_cdd(paper_cdd).objective
        )

    def test_beats_single_ta_chain_on_benchmark(self):
        # Equal evaluation budgets: the ES (population-based, elitist)
        # should not lose badly to one TA chain.
        inst = biskup_instance(30, 0.4, 1)
        es = evolution_strategy(
            inst, EvolutionStrategyConfig(generations=50, mu=8, lam=32,
                                          seed=3)
        )
        ta = threshold_accepting(
            inst, ThresholdAcceptingConfig(iterations=50 * 32, seed=3)
        )
        assert es.objective <= ta.objective * 1.2

    def test_evaluations_counted(self, paper_cdd):
        cfg = EvolutionStrategyConfig(generations=10, mu=4, lam=12, seed=0)
        r = evolution_strategy(paper_cdd, cfg)
        assert r.evaluations == 4 + 10 * 12

    def test_ucddcp(self, paper_ucddcp):
        r = evolution_strategy(
            paper_ucddcp, EvolutionStrategyConfig(generations=40, seed=0)
        )
        validate_schedule(paper_ucddcp, r.schedule, require_no_idle=True)


class TestMultiWalkerES:
    """The batched multi-chain knob: walkers=1 IS the classic ES."""

    def test_walkers_one_is_default_and_byte_identical(self, paper_cdd):
        base = EvolutionStrategyConfig(generations=30, mu=5, lam=15, seed=6,
                                       record_history=True)
        explicit = EvolutionStrategyConfig(generations=30, mu=5, lam=15,
                                           seed=6, record_history=True,
                                           walkers=1)
        a = evolution_strategy(paper_cdd, base)
        b = evolution_strategy(paper_cdd, explicit)
        assert a.objective == b.objective
        assert np.array_equal(a.best_sequence, b.best_sequence)
        assert np.array_equal(a.history, b.history)

    def test_multi_walker_deterministic_and_valid(self, paper_cdd):
        cfg = EvolutionStrategyConfig(generations=30, mu=4, lam=12, seed=6,
                                      walkers=4)
        a = evolution_strategy(paper_cdd, cfg)
        b = evolution_strategy(paper_cdd, cfg)
        assert a.objective == b.objective
        assert np.array_equal(a.best_sequence, b.best_sequence)
        validate_schedule(paper_cdd, a.schedule, require_no_idle=True)

    def test_evaluations_scale_with_walkers(self, paper_cdd):
        cfg = EvolutionStrategyConfig(generations=10, mu=4, lam=12, seed=0,
                                      walkers=3)
        r = evolution_strategy(paper_cdd, cfg)
        assert r.evaluations == (4 + 10 * 12) * 3

    def test_history_tracks_best_over_all_walkers(self, paper_cdd):
        r = evolution_strategy(
            paper_cdd,
            EvolutionStrategyConfig(generations=40, seed=1, walkers=3,
                                    record_history=True),
        )
        assert np.all(np.diff(r.history) <= 0)  # elitist per walker => min too
        assert r.history[-1] == r.objective

    def test_walkers_validated(self):
        with pytest.raises(ValueError, match="walkers"):
            EvolutionStrategyConfig(walkers=0)

    def test_walkers_recorded_in_params(self, paper_cdd):
        r = evolution_strategy(
            paper_cdd, EvolutionStrategyConfig(generations=5, walkers=2)
        )
        assert r.params["walkers"] == 2

    def test_ucddcp_walkers(self, paper_ucddcp):
        r = evolution_strategy(
            paper_ucddcp,
            EvolutionStrategyConfig(generations=30, seed=0, walkers=3),
        )
        validate_schedule(paper_ucddcp, r.schedule, require_no_idle=True)
