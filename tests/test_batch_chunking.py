"""Chunked dispatch in ``solve_many``: the chunk planner, bit-identity
with process-per-instance dispatch, and the error-isolation contract
(in-chunk exceptions stay per-instance; a chunk-level abnormal death
marks every member)."""

import warnings

import pytest

from repro.pool.batch import (
    CHUNK_SMALL_N,
    CHUNK_TARGET,
    _plan_chunks,
    solve_many,
)
from repro.pool.faults import PoolFaultPlan, parse_pool_fault
from repro.instances.biskup import biskup_instance

SOLVE_KW = dict(
    backend="vectorized", iterations=30, grid_size=2, block_size=32, seed=7
)


@pytest.fixture(autouse=True)
def _quiet_oversubscription():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


class _Inst:
    def __init__(self, n):
        self.n = n


class TestChunkPlanner:
    def test_none_keeps_process_per_instance(self):
        assert _plan_chunks([_Inst(5)] * 3, None) == [[0], [1], [2]]

    def test_auto_packs_consecutive_small_instances(self):
        plan = _plan_chunks([_Inst(10)] * (CHUNK_TARGET + 2), "auto")
        assert plan == [list(range(CHUNK_TARGET)),
                        [CHUNK_TARGET, CHUNK_TARGET + 1]]

    def test_auto_gives_large_instances_their_own_task(self):
        small, big = _Inst(CHUNK_SMALL_N), _Inst(CHUNK_SMALL_N + 1)
        plan = _plan_chunks([small, small, big, small], "auto")
        assert plan == [[0, 1], [2], [3]]

    def test_auto_without_n_attribute_is_singleton(self):
        plan = _plan_chunks([object(), _Inst(5)], "auto")
        assert plan == [[0], [1]]

    def test_int_packs_unconditionally(self):
        plan = _plan_chunks([_Inst(100)] * 5, 2)
        assert plan == [[0, 1], [2, 3], [4]]

    @pytest.mark.parametrize("bad", [0, -1, True, 1.5, "eight"])
    def test_invalid_chunk_sizes_rejected(self, bad):
        with pytest.raises(ValueError):
            _plan_chunks([_Inst(5)], bad)


class TestChunkedResults:
    def _instances(self):
        return [
            biskup_instance(10, h, k)
            for h in (0.2, 0.4, 0.6) for k in (1, 2)
        ]

    def test_chunked_dispatch_is_bit_identical(self):
        instances = self._instances()
        reference = solve_many(
            instances, "parallel_sa", workers=2, **SOLVE_KW
        )
        for chunk_size in ("auto", 4):
            chunked = solve_many(
                instances, "parallel_sa", workers=2,
                chunk_size=chunk_size, **SOLVE_KW
            )
            assert all(item.ok for item in chunked)
            assert [
                (item.index, item.result.objective) for item in chunked
            ] == [
                (item.index, item.result.objective) for item in reference
            ]

    def test_in_chunk_exception_stays_isolated(self):
        instances = self._instances()
        instances[2] = object()  # solver_for raises TypeError for it
        items = solve_many(
            instances, "parallel_sa", workers=2, chunk_size=3, **SOLVE_KW
        )
        assert not items[2].ok
        assert items[2].error.error_type == "TypeError"
        assert items[2].error.host == "local"
        # Chunk-mates of the bad instance still solved.
        assert items[0].ok and items[1].ok
        assert all(item.ok for item in items[3:])

    def test_chunk_level_crash_marks_every_member(self):
        instances = self._instances()
        # Task 0 is the whole first chunk; crash it once with no retry
        # budget -- every member must carry the same crash record.
        plan = PoolFaultPlan([parse_pool_fault("kill:0")])
        items = solve_many(
            instances, "parallel_sa", workers=2, chunk_size=3,
            pool_faults=plan, **SOLVE_KW
        )
        for item in items[:3]:
            assert not item.ok
            assert item.error.error_type == "worker_crash"
        assert all(item.ok for item in items[3:])

    def test_chunk_level_crash_retries_whole_chunk(self):
        instances = self._instances()
        plan = PoolFaultPlan([parse_pool_fault("kill:0")])
        items = solve_many(
            instances, "parallel_sa", workers=2, chunk_size=3,
            pool_faults=plan, task_retries=1, **SOLVE_KW
        )
        assert all(item.ok for item in items)
