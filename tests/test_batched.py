"""Batched (ensemble) optimizers must agree elementwise with the scalar ones."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.seqopt.batched import (
    batched_cdd_from_gathered,
    batched_cdd_objective,
    batched_ucddcp_objective,
    gather_sequences,
)
from repro.seqopt.cdd_linear import optimize_cdd_sequence
from repro.seqopt.ucddcp_linear import optimize_ucddcp_sequence
from tests.conftest import cdd_instances, ucddcp_instances


def random_sequences(n: int, count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.argsort(rng.random((count, n)), axis=1)


class TestGather:
    def test_gather_shapes_and_values(self):
        vals = np.array([10.0, 20.0, 30.0])
        seqs = np.array([[2, 0, 1], [0, 1, 2]])
        g = gather_sequences(vals, seqs)
        assert np.array_equal(g, [[30, 10, 20], [10, 20, 30]])


class TestBatchedCDD:
    @given(inst=cdd_instances(min_n=1, max_n=8), seed=st.integers(0, 10_000))
    def test_matches_scalar(self, inst, seed):
        seqs = random_sequences(inst.n, 16, seed)
        batched = batched_cdd_objective(inst, seqs)
        scalar = np.array(
            [optimize_cdd_sequence(inst, s).objective for s in seqs]
        )
        np.testing.assert_allclose(batched, scalar, atol=1e-9)

    @given(inst=cdd_instances(min_n=2, max_n=6))
    def test_positions_match_scalar(self, inst):
        seqs = random_sequences(inst.n, 8, 3)
        _, completions, r = batched_cdd_from_gathered(
            inst.processing[seqs],
            inst.alpha[seqs],
            inst.beta[seqs],
            inst.due_date,
            return_completions=True,
        )
        for i, s in enumerate(seqs):
            sched = optimize_cdd_sequence(inst, s)
            assert int(r[i]) == sched.meta["due_date_position"]
            np.testing.assert_allclose(completions[i], sched.completion)

    def test_shape_validation(self, paper_cdd):
        with pytest.raises(ValueError, match="shape"):
            batched_cdd_objective(paper_cdd, np.zeros((4, 3), dtype=int))

    def test_single_row(self, paper_cdd):
        obj = batched_cdd_objective(paper_cdd, np.arange(5)[None, :])
        assert obj.shape == (1,)
        assert obj[0] == 81.0

    def test_large_ensemble_consistency(self, paper_cdd):
        seqs = random_sequences(5, 500, 11)
        batched = batched_cdd_objective(paper_cdd, seqs)
        # Spot-check a sample against the scalar algorithm.
        for i in range(0, 500, 61):
            scalar = optimize_cdd_sequence(paper_cdd, seqs[i]).objective
            assert batched[i] == pytest.approx(scalar)


class TestBatchedUCDDCP:
    @given(inst=ucddcp_instances(min_n=1, max_n=8), seed=st.integers(0, 10_000))
    def test_matches_scalar(self, inst, seed):
        seqs = random_sequences(inst.n, 16, seed)
        batched = batched_ucddcp_objective(inst, seqs)
        scalar = np.array(
            [optimize_ucddcp_sequence(inst, s).objective for s in seqs]
        )
        np.testing.assert_allclose(batched, scalar, atol=1e-9)

    def test_paper_example(self, paper_ucddcp):
        obj = batched_ucddcp_objective(paper_ucddcp, np.arange(5)[None, :])
        assert obj[0] == 77.0

    def test_shape_validation(self, paper_ucddcp):
        with pytest.raises(ValueError, match="shape"):
            batched_ucddcp_objective(paper_ucddcp, np.zeros((4, 2), dtype=int))

    def test_batched_is_row_independent(self, paper_ucddcp):
        # Evaluating a row alone or inside a big batch gives the same value.
        seqs = random_sequences(5, 64, 5)
        full = batched_ucddcp_objective(paper_ucddcp, seqs)
        for i in (0, 17, 63):
            solo = batched_ucddcp_objective(paper_ucddcp, seqs[i : i + 1])
            assert solo[0] == pytest.approx(full[i])


class TestBatchedExtremes:
    def test_many_duplicate_rows(self, paper_cdd):
        # Identical rows must produce identical objectives (pure function).
        seqs = np.tile(np.arange(5), (64, 1))
        out = batched_cdd_objective(paper_cdd, seqs)
        assert np.all(out == out[0]) and out[0] == 81.0

    def test_single_job_instances(self):
        from repro.problems.cdd import CDDInstance

        inst = CDDInstance([7], [3], [2], 4.0)
        out = batched_cdd_objective(inst, np.zeros((5, 1), dtype=int))
        # C = 7, T = 3, beta = 2 -> 6 for every row.
        np.testing.assert_allclose(out, 6.0)

    def test_wide_batch(self, paper_ucddcp, rng):
        seqs = np.argsort(rng.random((2000, 5)), axis=1)
        out = batched_ucddcp_objective(paper_ucddcp, seqs)
        assert out.shape == (2000,)
        assert out.min() >= 0
