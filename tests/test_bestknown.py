"""Best-known store and reference computation."""

import numpy as np
import pytest

from repro.bestknown.compute import compute_best_known
from repro.bestknown.store import BestKnownEntry, BestKnownStore
from repro.instances.biskup import biskup_instance
from repro.instances.ucddcp_gen import ucddcp_instance
from repro.problems.cdd import CDDInstance
from repro.seqopt.exact import brute_force_cdd


class TestStore:
    def test_round_trip(self, tmp_store_path):
        store = BestKnownStore(tmp_store_path)
        store.update("a", BestKnownEntry(10.0, "sa"))
        store.save()
        back = BestKnownStore(tmp_store_path)
        assert back.get("a").objective == 10.0
        assert len(back) == 1

    def test_update_monotone(self, tmp_store_path):
        store = BestKnownStore(tmp_store_path)
        assert store.update("a", BestKnownEntry(10.0, "sa"))
        assert not store.update("a", BestKnownEntry(11.0, "sa"))
        assert store.update("a", BestKnownEntry(9.0, "sa"))
        assert store.get("a").objective == 9.0

    def test_optimal_not_displaced_by_heuristic(self, tmp_store_path):
        store = BestKnownStore(tmp_store_path)
        store.update("a", BestKnownEntry(10.0, "dp", optimal=True))
        # Even a "better" heuristic value must not displace a proven
        # optimum (it would indicate an objective mismatch upstream).
        assert not store.update("a", BestKnownEntry(9.0, "sa", optimal=False))

    def test_optimal_flag_upgrades(self, tmp_store_path):
        store = BestKnownStore(tmp_store_path)
        store.update("a", BestKnownEntry(10.0, "sa", optimal=False))
        assert store.update("a", BestKnownEntry(10.0, "dp", optimal=True))
        assert store.get("a").optimal

    def test_contains(self, tmp_store_path):
        store = BestKnownStore(tmp_store_path)
        assert "a" not in store
        store.update("a", BestKnownEntry(1.0, "x"))
        assert "a" in store

    def test_missing_get(self, tmp_store_path):
        assert BestKnownStore(tmp_store_path).get("zzz") is None


class TestCompute:
    def test_small_instance_exact(self, tmp_store_path):
        rng = np.random.default_rng(0)
        p = rng.integers(1, 10, 6).astype(float)
        inst = CDDInstance(
            p, rng.integers(1, 10, 6).astype(float),
            rng.integers(1, 15, 6).astype(float),
            float(0.5 * p.sum()), name="tiny_cdd",
        )
        store = BestKnownStore(tmp_store_path)
        val = compute_best_known(inst, store, save=False)
        assert val == pytest.approx(brute_force_cdd(inst).objective)
        assert store.get("tiny_cdd").optimal

    def test_cached_value_reused(self, tmp_store_path):
        store = BestKnownStore(tmp_store_path)
        store.update("biskup_n10_k1_h0.4", BestKnownEntry(123.0, "stub"))
        inst = biskup_instance(10, 0.4, 1)
        assert compute_best_known(inst, store, save=False) == 123.0

    def test_heuristic_reference_reasonable(self, tmp_store_path):
        inst = biskup_instance(10, 0.4, 1)
        store = BestKnownStore(tmp_store_path)
        val = compute_best_known(
            inst, store, restarts=2, iterations=800, save=False
        )
        # The reference must beat the average random sequence by a margin.
        from repro.seqopt.batched import batched_cdd_objective

        rng = np.random.default_rng(1)
        rand = batched_cdd_objective(
            inst, np.argsort(rng.random((200, 10)), axis=1)
        ).mean()
        assert val < rand

    def test_requires_name(self, tmp_store_path):
        inst = CDDInstance([1, 2], [1, 1], [1, 1], 2.0)  # unnamed
        # Exact path works without a name only if n small... the seed
        # derivation demands a name for heuristic runs; exact path is fine.
        store = BestKnownStore(tmp_store_path)
        with pytest.raises(ValueError, match="named"):
            # Force the heuristic path with a too-big brute-force limit by
            # building a 12-job unnamed restrictive instance.
            big = CDDInstance(
                np.ones(12) * 2, np.ones(12), np.ones(12), 10.0
            )
            compute_best_known(big, store, save=False)

    def test_ucddcp_reference(self, tmp_store_path):
        inst = ucddcp_instance(6, 1)
        store = BestKnownStore(tmp_store_path)
        val = compute_best_known(inst, store, save=False)
        entry = store.get(inst.name)
        assert entry.optimal and entry.method == "brute_force"
        assert val == entry.objective

    def test_persisted_to_disk(self, tmp_store_path):
        inst = ucddcp_instance(5, 1)
        store = BestKnownStore(tmp_store_path)
        compute_best_known(inst, store, save=True)
        assert tmp_store_path.exists()
        again = BestKnownStore(tmp_store_path)
        assert inst.name in again
