"""Device-model calibration against the paper's published runtime anchors.

Section VIII quotes absolute GT 560M runtimes; the cost-model constants in
:mod:`repro.kernels.fitness` and :mod:`repro.core.parallel_dpso` were chosen
to land on them.  These tests keep that calibration from drifting: the
modeled per-generation time is measured over a short run and extrapolated
to the paper's budget.

The cross-generation class pins the profile registry's physics: newer
generations must be modeled strictly faster at fixed work, and the
solution trajectory (objective, schedule) must be identical on every
profile -- the device model only changes the clock, never the search.
"""

import pytest

from repro.core.parallel_dpso import ParallelDPSOConfig, parallel_dpso
from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.experiments.paper_data import PAPER_RUNTIME_ANCHORS
from repro.gpusim.kernel import KernelCost
from repro.gpusim.launch import linear_config, occupancy
from repro.gpusim.profiles import get_profile, profile_names
from repro.instances.biskup import biskup_instance
from repro.instances.ucddcp_gen import ucddcp_instance

_CALIB_ITERS = 20


def _modeled_full_run(result, iterations_run, iterations_target):
    """Extrapolate a short run's modeled time to the full budget.

    Fixed costs (transfers, T0 setup) are carried once; the per-generation
    kernel time scales linearly.
    """
    fixed = result.modeled_memcpy_time_s
    per_gen = (result.modeled_device_time_s - fixed) / iterations_run
    return fixed + per_gen * iterations_target


class TestGT560MCalibration:
    def test_cdd_sa5000_n1000_anchor(self):
        # Paper: "for an input size of 1000 jobs the SA_5000 algorithm runs
        # for about 17.26 seconds".
        inst = biskup_instance(1000, 0.4, 1)
        r = parallel_sa(
            inst,
            ParallelSAConfig(iterations=_CALIB_ITERS, grid_size=4,
                             block_size=192, seed=0, t0=1.0),
        )
        modeled = _modeled_full_run(r, _CALIB_ITERS, 5000)
        anchor = PAPER_RUNTIME_ANCHORS["cdd_sa5000_n1000_gpu_s"]
        assert anchor / 2 < modeled < anchor * 2

    def test_ucddcp_sa1000_n50_anchor(self):
        # Paper: "SA version with 1000 generations requires only 0.67
        # seconds for 50 jobs" (UCDDCP).
        inst = ucddcp_instance(50, 1)
        r = parallel_sa(
            inst,
            ParallelSAConfig(iterations=_CALIB_ITERS, grid_size=4,
                             block_size=192, seed=0, t0=1.0),
        )
        modeled = _modeled_full_run(r, _CALIB_ITERS, 1000)
        anchor = PAPER_RUNTIME_ANCHORS["ucddcp_sa1000_n50_gpu_s"]
        # Small-instance absolute anchors are looser: fixed overheads
        # dominate and the paper reports a single decimal.
        assert anchor / 4 < modeled < anchor * 4

    def test_dpso_to_sa_generation_ratio(self):
        # Table III at n=1000: SA_1000 speedup 111.2 vs DPSO_1000 24.6
        # against the same CPU reference => DPSO runs ~4.5x slower.
        inst = biskup_instance(1000, 0.4, 1)
        sa = parallel_sa(
            inst,
            ParallelSAConfig(iterations=_CALIB_ITERS, grid_size=4,
                             block_size=192, seed=0, t0=1.0),
        )
        dpso = parallel_dpso(
            inst,
            ParallelDPSOConfig(iterations=_CALIB_ITERS, grid_size=4,
                               block_size=192, seed=0),
        )
        ratio = (
            (dpso.modeled_device_time_s - dpso.modeled_memcpy_time_s)
            / (sa.modeled_device_time_s - sa.modeled_memcpy_time_s)
        )
        assert 3.0 < ratio < 6.5

    def test_cpu7_reference_anchor_consistency(self):
        # The implied [7] CPU time (379.36 s) over its published speedup
        # (111.2) gives the paper's own GPU SA_1000 time at n=1000; our
        # model must land in the same band.
        implied_gpu = (
            PAPER_RUNTIME_ANCHORS["cdd_cpu7_n1000_s"] / 111.2
        )
        inst = biskup_instance(1000, 0.4, 1)
        r = parallel_sa(
            inst,
            ParallelSAConfig(iterations=_CALIB_ITERS, grid_size=4,
                             block_size=192, seed=0, t0=1.0),
        )
        modeled = _modeled_full_run(r, _CALIB_ITERS, 1000)
        assert implied_gpu / 2 < modeled < implied_gpu * 2


def _sa_on_profile(profile_key, n=200):
    inst = biskup_instance(n, 0.4, 1)
    return parallel_sa(
        inst,
        ParallelSAConfig(iterations=_CALIB_ITERS, grid_size=4,
                         block_size=192, seed=0, t0=1.0,
                         device_profile=profile_key),
    )


class TestCrossGenerationCalibration:
    """Registry profiles must order sensibly and never change the search."""

    @staticmethod
    def _probe_time(profile_key, num_blocks, block=192):
        profile = get_profile(profile_key)
        spec = profile.spec
        cfg = linear_config(num_blocks * block, block)
        occ = occupancy(spec, block, 24, 0)
        cost = KernelCost(cycles_per_thread=2000.0,
                          global_bytes_per_thread=96.0)
        model = profile.create_timing_model()
        return model.kernel_timing(spec, cfg, occ.blocks_per_sm, cost).total_s

    def test_newer_generations_faster_when_filled(self):
        # Same kernel, same work, enough blocks to fill every registered
        # device (432 blocks = 4 per SM on the A100, 108 waves on the
        # GT 560M): each generational step must cut the modeled time.
        # (fermi is a generic sibling of gt560m, not a successor, so the
        # ladder is gt560m -> k20 -> pascal -> ampere.)
        times = {key: self._probe_time(key, num_blocks=432)
                 for key in ("gt560m", "k20", "pascal", "ampere")}
        assert times["ampere"] < times["pascal"]
        assert times["pascal"] < times["k20"]
        assert times["k20"] < times["gt560m"]

    def test_tiny_launch_underutilizes_wide_gpus(self):
        # The paper's 4-block geometry cannot fill a 108-SM A100, and the
        # A100's per-SM FP32 rate is below the GTX 1080's -- so at this
        # launch shape the model must *not* reward the newer part.  This
        # pins the occupancy story the device_surface study tells.
        assert (self._probe_time("ampere", num_blocks=4)
                > self._probe_time("pascal", num_blocks=4))

    def test_newer_generations_transfer_faster(self):
        # PCIe/NVLink generations: host<->device transfer time at fixed
        # bytes must strictly improve down the ladder.
        times = {
            key: _sa_on_profile(key).modeled_memcpy_time_s
            for key in ("gt560m", "pascal", "ampere")
        }
        assert times["ampere"] < times["pascal"]
        assert times["pascal"] < times["gt560m"]

    @pytest.mark.parametrize("profile_key", profile_names())
    def test_trajectory_identical_on_every_profile(self, profile_key):
        # The device model only changes the clock -- the search trajectory
        # (objective and best sequence) must be bit-identical across all
        # registered generations.
        baseline = _sa_on_profile("gt560m", n=60)
        other = _sa_on_profile(profile_key, n=60)
        assert other.objective == baseline.objective
        assert (other.best_sequence == baseline.best_sequence).all()
        assert other.evaluations == baseline.evaluations

    def test_params_record_profile(self):
        r = _sa_on_profile("pascal", n=60)
        assert r.params["device_profile"] == "pascal"
        assert r.params["device_spec"] == "GeForce GTX 1080"
