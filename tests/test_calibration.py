"""Device-model calibration against the paper's published runtime anchors.

Section VIII quotes absolute GT 560M runtimes; the cost-model constants in
:mod:`repro.kernels.fitness` and :mod:`repro.core.parallel_dpso` were chosen
to land on them.  These tests keep that calibration from drifting: the
modeled per-generation time is measured over a short run and extrapolated
to the paper's budget.
"""

from repro.core.parallel_dpso import ParallelDPSOConfig, parallel_dpso
from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.experiments.paper_data import PAPER_RUNTIME_ANCHORS
from repro.instances.biskup import biskup_instance
from repro.instances.ucddcp_gen import ucddcp_instance

_CALIB_ITERS = 20


def _modeled_full_run(result, iterations_run, iterations_target):
    """Extrapolate a short run's modeled time to the full budget.

    Fixed costs (transfers, T0 setup) are carried once; the per-generation
    kernel time scales linearly.
    """
    fixed = result.modeled_memcpy_time_s
    per_gen = (result.modeled_device_time_s - fixed) / iterations_run
    return fixed + per_gen * iterations_target


class TestGT560MCalibration:
    def test_cdd_sa5000_n1000_anchor(self):
        # Paper: "for an input size of 1000 jobs the SA_5000 algorithm runs
        # for about 17.26 seconds".
        inst = biskup_instance(1000, 0.4, 1)
        r = parallel_sa(
            inst,
            ParallelSAConfig(iterations=_CALIB_ITERS, grid_size=4,
                             block_size=192, seed=0, t0=1.0),
        )
        modeled = _modeled_full_run(r, _CALIB_ITERS, 5000)
        anchor = PAPER_RUNTIME_ANCHORS["cdd_sa5000_n1000_gpu_s"]
        assert anchor / 2 < modeled < anchor * 2

    def test_ucddcp_sa1000_n50_anchor(self):
        # Paper: "SA version with 1000 generations requires only 0.67
        # seconds for 50 jobs" (UCDDCP).
        inst = ucddcp_instance(50, 1)
        r = parallel_sa(
            inst,
            ParallelSAConfig(iterations=_CALIB_ITERS, grid_size=4,
                             block_size=192, seed=0, t0=1.0),
        )
        modeled = _modeled_full_run(r, _CALIB_ITERS, 1000)
        anchor = PAPER_RUNTIME_ANCHORS["ucddcp_sa1000_n50_gpu_s"]
        # Small-instance absolute anchors are looser: fixed overheads
        # dominate and the paper reports a single decimal.
        assert anchor / 4 < modeled < anchor * 4

    def test_dpso_to_sa_generation_ratio(self):
        # Table III at n=1000: SA_1000 speedup 111.2 vs DPSO_1000 24.6
        # against the same CPU reference => DPSO runs ~4.5x slower.
        inst = biskup_instance(1000, 0.4, 1)
        sa = parallel_sa(
            inst,
            ParallelSAConfig(iterations=_CALIB_ITERS, grid_size=4,
                             block_size=192, seed=0, t0=1.0),
        )
        dpso = parallel_dpso(
            inst,
            ParallelDPSOConfig(iterations=_CALIB_ITERS, grid_size=4,
                               block_size=192, seed=0),
        )
        ratio = (
            (dpso.modeled_device_time_s - dpso.modeled_memcpy_time_s)
            / (sa.modeled_device_time_s - sa.modeled_memcpy_time_s)
        )
        assert 3.0 < ratio < 6.5

    def test_cpu7_reference_anchor_consistency(self):
        # The implied [7] CPU time (379.36 s) over its published speedup
        # (111.2) gives the paper's own GPU SA_1000 time at n=1000; our
        # model must land in the same band.
        implied_gpu = (
            PAPER_RUNTIME_ANCHORS["cdd_cpu7_n1000_s"] / 111.2
        )
        inst = biskup_instance(1000, 0.4, 1)
        r = parallel_sa(
            inst,
            ParallelSAConfig(iterations=_CALIB_ITERS, grid_size=4,
                             block_size=192, seed=0, t0=1.0),
        )
        modeled = _modeled_full_run(r, _CALIB_ITERS, 1000)
        assert implied_gpu / 2 < modeled < implied_gpu * 2
