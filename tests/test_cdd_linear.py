"""Tests for the O(n) CDD sequence optimizer (Lässig et al. [7])."""

import numpy as np
import pytest
from hypothesis import given

from repro.problems.cdd import CDDInstance
from repro.problems.validation import validate_schedule
from repro.seqopt.cdd_linear import (
    cdd_objective_for_sequence,
    optimize_cdd_sequence,
)
from repro.seqopt.lp_reference import lp_optimize_sequence
from tests.conftest import cdd_instances, permutations_of


class TestPaperWalkthrough:
    """Section IV-A's illustration, step by step."""

    def test_final_objective(self, paper_cdd):
        s = optimize_cdd_sequence(paper_cdd, np.arange(5))
        assert s.objective == 81.0

    def test_due_date_position_is_job_two(self, paper_cdd):
        s = optimize_cdd_sequence(paper_cdd, np.arange(5))
        assert s.meta["due_date_position"] == 2
        assert s.completion[1] == paper_cdd.due_date

    def test_final_completions(self, paper_cdd):
        s = optimize_cdd_sequence(paper_cdd, np.arange(5))
        assert np.array_equal(s.completion, [11.0, 16.0, 18.0, 22.0, 26.0])

    def test_no_reduction(self, paper_cdd):
        s = optimize_cdd_sequence(paper_cdd, np.arange(5))
        assert np.all(s.reduction == 0.0)

    def test_schedule_is_feasible_and_tight(self, paper_cdd):
        s = optimize_cdd_sequence(paper_cdd, np.arange(5))
        validate_schedule(paper_cdd, s, require_no_idle=True)


class TestEdgeCases:
    def test_single_job_early_penalty(self):
        # One job, d far right: job completes at d (no earliness).
        inst = CDDInstance([5], [3], [2], 20.0)
        s = optimize_cdd_sequence(inst, np.array([0]))
        assert s.completion[0] == 20.0
        assert s.objective == 0.0

    def test_single_job_restrictive(self):
        # d before the job can finish: start at zero, pay tardiness.
        inst = CDDInstance([5], [3], [2], 2.0)
        s = optimize_cdd_sequence(inst, np.array([0]))
        assert s.completion[0] == 5.0
        assert s.objective == 2 * 3.0  # T = 3, beta = 2 -> 6

    def test_all_alpha_zero_keeps_initial(self):
        # No earliness cost: the t=0 schedule is optimal.
        inst = CDDInstance([4, 4], [0, 0], [5, 5], 100.0)
        s = optimize_cdd_sequence(inst, np.arange(2))
        assert np.array_equal(s.completion, [4.0, 8.0])
        assert s.objective == 0.0
        assert s.meta["due_date_position"] == 0

    def test_all_beta_zero_shifts_fully_right(self):
        # No tardiness cost: everything moves right until job 1 is at d.
        inst = CDDInstance([4, 4], [5, 5], [0, 0], 100.0)
        s = optimize_cdd_sequence(inst, np.arange(2))
        assert s.completion[0] == 100.0
        assert s.objective == 0.0

    def test_due_date_zero_all_tardy(self):
        inst = CDDInstance([3, 2], [1, 1], [2, 3], 0.0)
        s = optimize_cdd_sequence(inst, np.arange(2))
        assert np.array_equal(s.completion, [3.0, 5.0])
        assert s.objective == 2 * 3 + 3 * 5

    def test_objective_only_variant_matches(self, paper_cdd, rng):
        for _ in range(10):
            seq = rng.permutation(5)
            full = optimize_cdd_sequence(paper_cdd, seq).objective
            fast = cdd_objective_for_sequence(paper_cdd, seq)
            assert fast == pytest.approx(full)


class TestAgainstLP:
    """The specialized O(n) algorithm must match the exact LP optimum."""

    @given(inst=cdd_instances(min_n=1, max_n=7), data=permutations_of(7))
    def test_matches_lp_identity_sequence(self, inst, data):
        seq = np.arange(inst.n)
        ours = optimize_cdd_sequence(inst, seq)
        lp = lp_optimize_sequence(inst, seq)
        assert ours.objective == pytest.approx(lp.objective, abs=1e-6)

    @given(inst=cdd_instances(min_n=5, max_n=5), seq=permutations_of(5))
    def test_matches_lp_random_sequence(self, inst, seq):
        ours = optimize_cdd_sequence(inst, seq)
        lp = lp_optimize_sequence(inst, seq)
        assert ours.objective == pytest.approx(lp.objective, abs=1e-6)


class TestStructuralProperties:
    """Invariants from Cheng & Kahlbacher / Hall et al. / Theorem 1."""

    @given(inst=cdd_instances(min_n=2, max_n=8))
    def test_no_idle_time(self, inst):
        s = optimize_cdd_sequence(inst, np.arange(inst.n))
        validate_schedule(inst, s, require_no_idle=True)

    @given(inst=cdd_instances(min_n=2, max_n=8))
    def test_hall_kubiak_sethi_anchor(self, inst):
        # First job starts at zero, or some job completes exactly at d.
        s = optimize_cdd_sequence(inst, np.arange(inst.n))
        p_seq = inst.processing[s.sequence]
        starts = s.start_times(p_seq)
        anchored = np.any(np.isclose(s.completion, inst.due_date))
        assert np.isclose(starts[0], 0.0) or anchored

    @given(inst=cdd_instances(min_n=2, max_n=8))
    def test_theorem1_inequalities_at_position(self, inst):
        # At the returned due-date position r: B_r >= A_{r-1} and, for the
        # move past d not taken, A_r >= B_{r+1} would contradict optimality
        # only if strict improvement existed, i.e. B_{r+1} <= A_r.
        s = optimize_cdd_sequence(inst, np.arange(inst.n))
        r = s.meta["due_date_position"]
        if r == 0:
            return
        a = inst.alpha[s.sequence]
        b = inst.beta[s.sequence]
        assert b[r - 1 :].sum() >= a[: r - 1].sum() - 1e-9  # Case 2 (ii)
        assert b[r:].sum() <= a[:r].sum() + 1e-9  # Case 2 (i)

    @given(inst=cdd_instances(min_n=2, max_n=8))
    def test_right_shift_never_hurts_vs_initial(self, inst):
        # The optimized schedule is at least as good as starting at zero.
        seq = np.arange(inst.n)
        init_obj = inst.objective_in_sequence(
            seq, np.cumsum(inst.processing[seq])
        )
        assert optimize_cdd_sequence(inst, seq).objective <= init_obj + 1e-9

    @given(inst=cdd_instances(min_n=2, max_n=6))
    def test_completion_spacing_matches_processing(self, inst):
        s = optimize_cdd_sequence(inst, np.arange(inst.n))
        p_seq = inst.processing[s.sequence]
        diffs = np.diff(s.completion)
        assert np.allclose(diffs, p_seq[1:])
