"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_args(self):
        args = build_parser().parse_args(
            ["solve", "cdd", "-n", "20", "-m", "serial_sa", "-i", "100"]
        )
        assert args.problem == "cdd"
        assert args.jobs == 20
        assert args.method == "serial_sa"

    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "fig11",
                                          "--scale", "smoke"])
        assert args.name == "fig11"
        assert args.scale == "smoke"

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])

    def test_experiment_resilience_flags(self):
        args = build_parser().parse_args([
            "experiment", "table2", "--resume", "--checkpoint-dir", "/tmp/c",
            "--max-retries", "5", "--unit-timeout", "30",
            "--inject-fault", "launch:40:transient",
            "--backend", "vectorized",
        ])
        assert args.resume and args.checkpoint_dir == "/tmp/c"
        assert args.max_retries == 5 and args.unit_timeout == 30.0
        assert args.inject_fault == "launch:40:transient"
        assert args.backend == "vectorized"

    def test_experiment_resilience_defaults(self):
        args = build_parser().parse_args(["experiment", "table2"])
        assert not args.resume
        assert args.checkpoint_dir == "results/checkpoints"
        assert args.max_retries == 2
        assert args.unit_timeout is None and args.inject_fault is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "cdd_smoke" in out

    def test_solve_serial(self, capsys):
        rc = main(["solve", "cdd", "-n", "10", "-m", "serial_sa",
                   "-i", "50", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "objective" in out and "biskup_n10" in out

    def test_solve_parallel_ucddcp(self, capsys):
        rc = main(["solve", "ucddcp", "-n", "10", "-m", "serial_sa",
                   "-i", "50"])
        assert rc == 0
        assert "ucddcp_n10" in capsys.readouterr().out

    def test_experiment_fig11_smoke(self, capsys):
        rc = main(["experiment", "fig11", "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig 11" in out

    def test_profile(self, capsys):
        rc = main(["profile", "-n", "20", "-i", "30"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fitness_cdd" in out
        assert "Time(%)" in out


class TestNewCommands:
    def test_bestknown(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        rc = main(["bestknown", "cdd_smoke", "--restarts", "1",
                   "--iterations", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "biskup_n10" in out and "reference values" in out
        assert (tmp_path / "bestknown.json").exists()

    def test_trace(self, capsys):
        rc = main(["trace", "-n", "15", "-i", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "async" in out and "best" in out

    def test_trace_sync_variant(self, capsys):
        rc = main(["trace", "-n", "15", "-i", "60", "--variant", "sync"])
        assert rc == 0
        assert "sync" in capsys.readouterr().out

    def test_report(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table2_cdd_deviation.txt").write_text("TABLE2 CONTENT\n")
        out = tmp_path / "EXPERIMENTS.md"
        rc = main(["report", "--results", str(results),
                   "--output", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "TABLE2 CONTENT" in text
        assert "paper vs. measured" in text
        assert "not yet generated" in text  # missing sections marked

    def test_solve_parallel_geometry_flags(self, capsys):
        rc = main(["solve", "cdd", "-n", "10", "-m", "parallel_sa",
                   "-i", "30", "--grid", "1", "--block", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "496 evaluations" in out or "evaluations" in out


class TestResilientCli:
    def test_bad_fault_spec_fails_fast(self, tmp_path):
        with pytest.raises(ValueError, match="bad fault spec"):
            main(["experiment", "cooling", "--scale", "smoke",
                  "--checkpoint-dir", str(tmp_path),
                  "--inject-fault", "launch:nope"])

    def test_unknown_fault_kind_fails_fast(self, tmp_path):
        with pytest.raises(ValueError, match="fault kind"):
            main(["experiment", "cooling", "--scale", "smoke",
                  "--checkpoint-dir", str(tmp_path),
                  "--inject-fault", "launch:1:gamma_ray"])

    def test_negative_retries_fail_fast(self, tmp_path):
        with pytest.raises(ValueError, match="max_retries"):
            main(["experiment", "cooling", "--scale", "smoke",
                  "--checkpoint-dir", str(tmp_path), "--max-retries", "-1"])

    def test_zero_unit_timeout_fails_fast(self, tmp_path):
        with pytest.raises(ValueError, match="unit_timeout_s"):
            main(["experiment", "cooling", "--scale", "smoke",
                  "--checkpoint-dir", str(tmp_path), "--unit-timeout", "0"])

    def test_experiment_writes_checkpoint(self, capsys, tmp_path):
        rc = main(["experiment", "cooling", "--scale", "smoke",
                   "--checkpoint-dir", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "ablation_cooling_smoke.jsonl").exists()

    def test_experiment_checkpointing_disabled(self, capsys, tmp_path,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["experiment", "cooling", "--scale", "smoke",
                   "--checkpoint-dir", "none"])
        assert rc == 0
        assert not (tmp_path / "none").exists()
        assert not (tmp_path / "results").exists()

    def test_interrupt_fault_exits_130_and_resumes(self, capsys, tmp_path):
        rc = main(["experiment", "cooling", "--scale", "smoke",
                   "--checkpoint-dir", str(tmp_path),
                   "--inject-fault", "launch:1500:interrupt"])
        captured = capsys.readouterr()
        assert rc == 130
        assert "--resume" in captured.err

        rc2 = main(["experiment", "cooling", "--scale", "smoke",
                    "--checkpoint-dir", str(tmp_path), "--resume"])
        captured2 = capsys.readouterr()
        assert rc2 == 0
        assert "restored from checkpoint" in captured2.err

    def test_permanent_failure_exits_1_with_partial_table(self, capsys,
                                                          tmp_path):
        rc = main(["experiment", "cooling", "--scale", "smoke",
                   "--checkpoint-dir", str(tmp_path),
                   "--inject-fault", "launch:700:fatal"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "Failed cells" in captured.out  # table still rendered
        assert "failed permanently" in captured.err

    def test_bestknown_checkpoint_flags(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        ckpt = tmp_path / "ckpt"
        rc = main(["bestknown", "cdd_smoke", "--restarts", "1",
                   "--iterations", "300", "--checkpoint-dir", str(ckpt)])
        assert rc == 0
        assert (ckpt / "bestknown.jsonl").exists()
        out = capsys.readouterr().out
        assert "biskup_n10" in out and "reference values" in out
