"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_args(self):
        args = build_parser().parse_args(
            ["solve", "cdd", "-n", "20", "-m", "serial_sa", "-i", "100"]
        )
        assert args.problem == "cdd"
        assert args.jobs == 20
        assert args.method == "serial_sa"

    def test_experiment_args(self):
        args = build_parser().parse_args(["experiment", "fig11",
                                          "--scale", "smoke"])
        assert args.name == "fig11"
        assert args.scale == "smoke"

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "cdd_smoke" in out

    def test_solve_serial(self, capsys):
        rc = main(["solve", "cdd", "-n", "10", "-m", "serial_sa",
                   "-i", "50", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "objective" in out and "biskup_n10" in out

    def test_solve_parallel_ucddcp(self, capsys):
        rc = main(["solve", "ucddcp", "-n", "10", "-m", "serial_sa",
                   "-i", "50"])
        assert rc == 0
        assert "ucddcp_n10" in capsys.readouterr().out

    def test_experiment_fig11_smoke(self, capsys):
        rc = main(["experiment", "fig11", "--scale", "smoke"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig 11" in out

    def test_profile(self, capsys):
        rc = main(["profile", "-n", "20", "-i", "30"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fitness_cdd" in out
        assert "Time(%)" in out


class TestNewCommands:
    def test_bestknown(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        rc = main(["bestknown", "cdd_smoke", "--restarts", "1",
                   "--iterations", "300"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "biskup_n10" in out and "reference values" in out
        assert (tmp_path / "bestknown.json").exists()

    def test_trace(self, capsys):
        rc = main(["trace", "-n", "15", "-i", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "async" in out and "best" in out

    def test_trace_sync_variant(self, capsys):
        rc = main(["trace", "-n", "15", "-i", "60", "--variant", "sync"])
        assert rc == 0
        assert "sync" in capsys.readouterr().out

    def test_report(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table2_cdd_deviation.txt").write_text("TABLE2 CONTENT\n")
        out = tmp_path / "EXPERIMENTS.md"
        rc = main(["report", "--results", str(results),
                   "--output", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "TABLE2 CONTENT" in text
        assert "paper vs. measured" in text
        assert "not yet generated" in text  # missing sections marked

    def test_solve_parallel_geometry_flags(self, capsys):
        rc = main(["solve", "cdd", "-n", "10", "-m", "parallel_sa",
                   "-i", "30", "--grid", "1", "--block", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "496 evaluations" in out or "evaluations" in out
