"""Cooling schedule and initial-temperature estimation."""

import numpy as np
import pytest

from repro.core.cooling import ExponentialCooling, estimate_initial_temperature
from repro.problems.cdd import CDDInstance


class TestExponentialCooling:
    def test_paper_schedule(self):
        c = ExponentialCooling(t0=100.0, mu=0.88)
        assert c.temperature(0) == 100.0
        assert c.temperature(1) == pytest.approx(88.0)
        assert c.temperature(10) == pytest.approx(100.0 * 0.88**10)

    def test_schedule_array(self):
        c = ExponentialCooling(t0=10.0, mu=0.5)
        np.testing.assert_allclose(c.schedule(4), [10.0, 5.0, 2.5, 1.25])

    def test_monotone_decreasing(self):
        sched = ExponentialCooling(t0=1.0, mu=0.88).schedule(100)
        assert np.all(np.diff(sched) < 0)

    def test_rejects_bad_mu(self):
        with pytest.raises(ValueError):
            ExponentialCooling(t0=1.0, mu=1.0)
        with pytest.raises(ValueError):
            ExponentialCooling(t0=1.0, mu=0.0)
        with pytest.raises(ValueError):
            ExponentialCooling(t0=1.0, mu=-0.1)

    def test_rejects_negative_t0(self):
        with pytest.raises(ValueError):
            ExponentialCooling(t0=-5.0)

    def test_rejects_negative_iteration(self):
        with pytest.raises(ValueError):
            ExponentialCooling(t0=1.0).temperature(-1)


class TestInitialTemperature:
    def test_is_fitness_spread(self, paper_cdd):
        t0 = estimate_initial_temperature(paper_cdd, samples=2000)
        assert t0 > 0
        # Spread of objectives for n=5 is bounded by the worst schedule.
        assert t0 < 1000

    def test_deterministic_with_rng(self, paper_cdd):
        a = estimate_initial_temperature(
            paper_cdd, 500, np.random.default_rng(1)
        )
        b = estimate_initial_temperature(
            paper_cdd, 500, np.random.default_rng(1)
        )
        assert a == b

    def test_single_job_zero_spread(self):
        inst = CDDInstance([5], [1], [1], 10.0)
        assert estimate_initial_temperature(inst, samples=100) == 0.0

    def test_ucddcp_supported(self, paper_ucddcp):
        t0 = estimate_initial_temperature(paper_ucddcp, samples=500)
        assert t0 > 0

    def test_rejects_tiny_sample(self, paper_cdd):
        with pytest.raises(ValueError):
            estimate_initial_temperature(paper_cdd, samples=1)

    def test_scales_with_penalties(self):
        rng = np.random.default_rng(0)
        p = rng.integers(1, 20, 12).astype(float)
        a = rng.integers(1, 10, 12).astype(float)
        b = rng.integers(1, 15, 12).astype(float)
        small = CDDInstance(p, a, b, float(0.5 * p.sum()))
        big = CDDInstance(p, 10 * a, 10 * b, float(0.5 * p.sum()))
        t_small = estimate_initial_temperature(small, 1000)
        t_big = estimate_initial_temperature(big, 1000)
        assert t_big == pytest.approx(10 * t_small, rel=1e-9)
