"""The device-profile registry and the spec validation behind it.

The registry is how experiments sweep GPU generations, so its contract is
load-bearing: keys resolve to validated specs, misses name the registry,
duplicates are rejected, and every registered profile yields a working
timing model.  The device_surface smoke test exercises the study that
consumes the whole registry end to end.
"""

import dataclasses

import pytest

from repro.experiments.config import get_scale
from repro.experiments.device_surface import (
    SURFACE_PROFILES,
    run_device_surface_study,
)
from repro.gpusim.device import GEFORCE_GT_560M, DeviceSpec
from repro.gpusim.profiles import (
    DEFAULT_PROFILE,
    DeviceProfile,
    get_profile,
    profile_names,
    register_profile,
)
from repro.gpusim.timing import TimingModel


class TestRegistry:
    def test_expected_generations_registered(self):
        names = profile_names()
        for key in ("gt560m", "fermi", "k20", "pascal", "ampere"):
            assert key in names

    def test_default_profile_is_the_papers_device(self):
        assert DEFAULT_PROFILE == "gt560m"
        assert get_profile(DEFAULT_PROFILE).spec.name == "GeForce GT 560M"

    def test_unknown_key_lists_registry(self):
        with pytest.raises(ValueError, match="unknown device profile"):
            get_profile("hopper")
        with pytest.raises(ValueError, match="gt560m"):
            get_profile("hopper")

    def test_duplicate_key_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_profile(DeviceProfile(
                key="gt560m", generation="dup", year=2011,
                spec=GEFORCE_GT_560M,
            ))

    def test_profiles_carry_provenance(self):
        for key in profile_names():
            profile = get_profile(key)
            assert profile.key == key
            assert profile.generation
            assert profile.year >= 2010
            assert profile.spec.name

    def test_default_timing_factory(self):
        model = get_profile("gt560m").create_timing_model()
        assert isinstance(model, TimingModel)
        # The default bundle is the analytic model the paper calibration
        # uses; a fresh default() must behave identically.
        assert model.transfer_time(GEFORCE_GT_560M, 4096) == (
            TimingModel.default().transfer_time(GEFORCE_GT_560M, 4096)
        )

    def test_generational_spec_progression(self):
        gt = get_profile("gt560m").spec
        pascal = get_profile("pascal").spec
        ampere = get_profile("ampere").spec
        assert gt.num_sms < pascal.num_sms < ampere.num_sms
        assert (gt.mem_bandwidth_bytes_per_s
                < pascal.mem_bandwidth_bytes_per_s
                < ampere.mem_bandwidth_bytes_per_s)
        assert (gt.pcie_bandwidth_bytes_per_s
                < pascal.pcie_bandwidth_bytes_per_s
                < ampere.pcie_bandwidth_bytes_per_s)


class TestSpecValidation:
    def _spec_kwargs(self, **overrides):
        kwargs = {
            f.name: getattr(GEFORCE_GT_560M, f.name)
            for f in dataclasses.fields(GEFORCE_GT_560M)
        }
        kwargs["name"] = "bad"
        kwargs.update(overrides)
        return kwargs

    @pytest.mark.parametrize("field, value", [
        ("num_sms", 0),
        ("cores_per_sm", -1),
        ("core_clock_hz", 0.0),
        ("mem_bandwidth_bytes_per_s", -1.0),
    ])
    def test_positive_fields_enforced(self, field, value):
        with pytest.raises(ValueError) as err:
            DeviceSpec(**self._spec_kwargs(**{field: value}))
        assert "'bad'" in str(err.value)
        assert repr(field) in str(err.value)

    def test_warp_size_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            DeviceSpec(**self._spec_kwargs(warp_size=24))

    def test_shared_mem_per_block_bounded_by_sm(self):
        with pytest.raises(ValueError, match="shared_mem_per_block"):
            DeviceSpec(**self._spec_kwargs(
                shared_mem_per_block=GEFORCE_GT_560M.shared_mem_per_sm + 1
            ))

    def test_block_threads_bounded_by_sm(self):
        with pytest.raises(ValueError, match="max_threads_per_block"):
            DeviceSpec(**self._spec_kwargs(
                max_threads_per_block=GEFORCE_GT_560M.max_threads_per_sm + 1
            ))

    def test_error_names_spec_and_field(self):
        with pytest.raises(ValueError) as err:
            DeviceSpec(**self._spec_kwargs(num_sms=0))
        msg = str(err.value)
        assert "device spec 'bad'" in msg
        assert "'num_sms'" in msg
        assert "(got 0)" in msg

    def test_registered_profiles_are_valid(self):
        # Registration would have raised at import otherwise, but pin it:
        # re-constructing each registered spec from its own field values
        # must succeed.
        for key in profile_names():
            spec = get_profile(key).spec
            DeviceSpec(**{
                f.name: getattr(spec, f.name)
                for f in dataclasses.fields(spec)
            })


class TestDeviceSurfaceStudy:
    def test_smoke_surface(self, tmp_path):
        from repro.resilience import ResilientRunner

        scale = get_scale("smoke")
        runner = ResilientRunner(checkpoint_dir=tmp_path)
        study = run_device_surface_study("cdd", scale, runner)
        assert study.profiles == SURFACE_PROFILES
        assert len(study.cells) == len(scale.sizes) * len(SURFACE_PROFILES)

        # Quality is profile-independent: identical objectives per size.
        obj = study.matrix("objective")
        assert (obj.max(axis=1) == obj.min(axis=1)).all()

        # Modeled runtimes are distinct per generation (the point of the
        # surface) and every speedup is finite and positive.
        gpu = study.matrix("modeled_gpu_s")
        for row in gpu:
            assert len(set(row.tolist())) == len(SURFACE_PROFILES)
        assert (study.matrix("speedup") > 0).all()

        rendered = study.render()
        assert "GPU generation" in rendered
        assert "Objectives identical across generations" in rendered
        for prof in SURFACE_PROFILES:
            assert get_profile(prof).spec.name in rendered

    def test_unknown_profile_fails_fast(self):
        with pytest.raises(ValueError, match="unknown device profile"):
            run_device_surface_study(
                "cdd", get_scale("smoke"), profiles=("gt560m", "hopper"),
            )
