"""End-to-end tests for the distributed pool: agent handshake, the
bit-identity contract of ``backend="distributed"`` against the local
multiprocess pool (including a mid-run agent SIGKILL), graceful
degradation, and the façade/CLI knob validation."""

import threading
import warnings

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.engine.backends import DistributedBackend, create_backend
from repro.core.solver import solver_for
from repro.instances.biskup import biskup_instance
from repro.pool.agent import HostAgent, spawn_local_agent
from repro.pool.errors import AllHostsLostError, HostProtocolError
from repro.pool.hosts import HostPool
from repro.pool.net import (
    FRAME_HELLO,
    FRAME_REJECT,
    FRAME_WELCOME,
    PROTOCOL_VERSION,
    HostSpec,
    client_socket,
    read_frame,
    send_json_frame,
)
from repro.pool.worker import solve_one

#: Small but non-trivial: 4 blocks so a 2-worker topology gets 2 shards.
SOLVE_KW = dict(iterations=60, grid_size=4, block_size=32, seed=7)


@pytest.fixture(autouse=True)
def _quiet_oversubscription():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


@pytest.fixture
def agent_pair():
    """Two single-worker localhost agents on ephemeral ports."""
    agents = [spawn_local_agent(workers=1) for _ in range(2)]
    yield agents
    for proc, _ in agents:
        if proc.is_alive():
            proc.terminate()
        proc.join()


def _hosts_arg(agents, workers=1):
    return ",".join(
        f"{addr[0]}:{addr[1]}:{workers}" for _, addr in agents
    )


def _same_result(a, b):
    return a.objective == b.objective and np.array_equal(
        a.best_sequence, b.best_sequence
    )


class TestHandshake:
    def test_welcome_announces_protocol_and_capacity(self, agent_pair):
        _, addr = agent_pair[0]
        sock = client_socket(tuple(addr), 5.0, 5.0)
        try:
            send_json_frame(
                sock, FRAME_HELLO,
                {"protocol": PROTOCOL_VERSION, "client": "test"},
            )
            frame = read_frame(sock)
            assert frame.kind == FRAME_WELCOME
            welcome = frame.json()
            assert welcome["protocol"] == PROTOCOL_VERSION
            assert welcome["workers"] == 1
            assert welcome["host"] == f"{addr[0]}:{addr[1]}"
            assert welcome["pid"] > 0
        finally:
            sock.close()

    def test_version_mismatch_rejected_and_agent_survives(self, agent_pair):
        _, addr = agent_pair[0]
        sock = client_socket(tuple(addr), 5.0, 5.0)
        try:
            send_json_frame(
                sock, FRAME_HELLO, {"protocol": PROTOCOL_VERSION + 1}
            )
            frame = read_frame(sock)
            assert frame.kind == FRAME_REJECT
            assert "protocol version mismatch" in frame.json()["reason"]
        finally:
            sock.close()
        # The agent goes back to accepting: a correct handshake succeeds.
        sock = client_socket(tuple(addr), 5.0, 5.0)
        try:
            send_json_frame(
                sock, FRAME_HELLO, {"protocol": PROTOCOL_VERSION}
            )
            assert read_frame(sock).kind == FRAME_WELCOME
        finally:
            sock.close()

    def test_client_refuses_version_skewed_agent(self, agent_pair, monkeypatch):
        # The client-side check: a WELCOME carrying another version is a
        # protocol error, not a transient connect failure.
        monkeypatch.setattr(
            "repro.pool.hosts.PROTOCOL_VERSION", PROTOCOL_VERSION + 7
        )
        _, addr = agent_pair[0]
        pool = HostPool([HostSpec(addr[0], addr[1], 1)])
        with pytest.raises(HostProtocolError, match="rejected the connection"):
            list(pool.imap_unordered([(solve_one, (None, "x", {}))]))

    def test_agent_binds_ephemeral_port(self):
        agent = HostAgent("127.0.0.1", 0, 1)
        host, port = agent.address
        assert host == "127.0.0.1" and port > 0
        assert agent.label == f"{host}:{port}"


class TestBitIdentity:
    def test_distributed_solve_matches_local_multiprocess(self, agent_pair):
        inst = biskup_instance(10, 0.4, 1)
        ref = solver_for(inst).solve(
            "parallel_sa", backend="multiprocess", workers=2, **SOLVE_KW
        )
        dist = solver_for(inst).solve(
            "parallel_sa", backend="distributed",
            hosts=_hosts_arg(agent_pair), **SOLVE_KW
        )
        assert _same_result(dist, ref)
        assert dist.params["backend"] == "distributed"
        assert dist.params["hosts"] == _hosts_arg(agent_pair)
        assert dist.params["workers"] == 2

    def test_unbalanced_topology_same_answer(self, agent_pair):
        # The shard plan depends only on the topology's total credit, so
        # 2 one-worker hosts and the equivalent local pool agree.
        inst = biskup_instance(10, 0.6, 2)
        via_one_host = solver_for(inst).solve(
            "parallel_sa", backend="distributed",
            hosts=_hosts_arg(agent_pair[:1], workers=2), **SOLVE_KW
        )
        ref = solver_for(inst).solve(
            "parallel_sa", backend="multiprocess", workers=2, **SOLVE_KW
        )
        assert _same_result(via_one_host, ref)


class TestFailover:
    def test_mid_run_agent_kill_is_bit_identical(self, agent_pair):
        # Enough work that the SIGKILL lands while shards are in flight.
        kw = dict(SOLVE_KW, iterations=1500, grid_size=8)
        inst = biskup_instance(10, 0.4, 1)
        ref = solver_for(inst).solve(
            "parallel_sa", backend="multiprocess", workers=2, **kw
        )
        victim, _ = agent_pair[1]
        killer = threading.Timer(0.3, victim.kill)
        killer.start()
        try:
            dist = solver_for(inst).solve(
                "parallel_sa", backend="distributed",
                hosts=_hosts_arg(agent_pair),
                heartbeat_interval_s=0.1, heartbeat_timeout_s=0.5,
                reconnect_attempts=2, backoff_base_s=0.02,
                connect_timeout_s=1.0, **kw
            )
        finally:
            killer.join()
        assert victim.exitcode == -9, "the drill must actually kill an agent"
        assert _same_result(dist, ref)

    def test_all_hosts_lost_degrades_to_local_pool(self, agent_pair):
        inst = biskup_instance(10, 0.4, 1)
        ref = solver_for(inst).solve(
            "parallel_sa", backend="multiprocess", workers=2, **SOLVE_KW
        )
        hosts = _hosts_arg(agent_pair)
        for proc, _ in agent_pair:
            proc.kill()
            proc.join()
        with pytest.warns(RuntimeWarning, match="degrading to the local"):
            dist = solver_for(inst).solve(
                "parallel_sa", backend="distributed", hosts=hosts,
                reconnect_attempts=1, backoff_base_s=0.02,
                connect_timeout_s=0.5, **SOLVE_KW
            )
        assert _same_result(dist, ref)

    def test_local_fallback_can_be_disabled(self):
        inst = biskup_instance(10, 0.4, 1)
        with pytest.raises(AllHostsLostError):
            solver_for(inst).solve(
                "parallel_sa", backend="distributed",
                hosts="127.0.0.1:1:1", local_fallback=False,
                reconnect_attempts=1, backoff_base_s=0.02,
                connect_timeout_s=0.5, **SOLVE_KW
            )


class TestBackendConstruction:
    def test_backend_requires_host_topology(self):
        with pytest.raises(ValueError, match="host topology"):
            DistributedBackend()
        with pytest.raises(ValueError, match="host topology"):
            create_backend("distributed")

    def test_backend_parses_topology_string(self):
        backend = DistributedBackend(hosts="a:4,b:7471:8")
        assert backend.workers == 12
        assert [spec.workers for spec in backend.hosts] == [4, 8]

    def test_backend_accepts_spec_sequence(self):
        backend = DistributedBackend(hosts=[HostSpec("a", 7000, 2)])
        assert backend.workers == 2

    def test_backend_primitives_never_run_locally(self):
        backend = DistributedBackend(hosts="a:1")
        with pytest.raises(RuntimeError, match="run_distributed_ensemble"):
            backend.open(None, seed=0, device_spec=None)


class TestFacadeValidation:
    def setup_method(self):
        self.solver = solver_for(biskup_instance(10, 0.4, 1))

    def test_distributed_requires_hosts(self):
        with pytest.raises(ValueError, match="requires\n?.*hosts="):
            self.solver.solve("parallel_sa", backend="distributed")

    def test_workers_conflicts_with_topology(self):
        with pytest.raises(ValueError, match="fixed by the host topology"):
            self.solver.solve(
                "parallel_sa", backend="distributed", hosts="a:1", workers=2
            )

    def test_task_timeout_is_agent_side(self):
        with pytest.raises(ValueError, match="agent-side"):
            self.solver.solve(
                "parallel_sa", backend="distributed", hosts="a:1",
                task_timeout=1.0,
            )

    def test_pool_faults_rejected_for_distributed(self):
        with pytest.raises(ValueError, match="net_faults"):
            self.solver.solve(
                "parallel_sa", backend="distributed", hosts="a:1",
                pool_faults=object(),
            )

    def test_hosts_requires_distributed_backend(self):
        with pytest.raises(ValueError, match="hosts= requires"):
            self.solver.solve("parallel_sa", hosts="a:1")

    def test_distributed_knobs_require_distributed_backend(self):
        with pytest.raises(ValueError, match="requires backend='distributed'"):
            self.solver.solve(
                "parallel_sa", backend="multiprocess", workers=2,
                heartbeat_timeout_s=1.0,
            )


class TestCLIFlags:
    def test_agent_subcommand_parses(self):
        args = build_parser().parse_args(
            ["agent", "--bind", "0.0.0.0:7471", "--workers", "4",
             "--task-timeout", "30"]
        )
        assert args.bind == "0.0.0.0:7471"
        assert args.workers == 4
        assert args.task_timeout == 30.0

    def test_solve_distributed_flags_parse(self):
        args = build_parser().parse_args(
            ["solve", "cdd", "--backend", "distributed",
             "--hosts", "h1:4,h2:8", "--heartbeat-timeout", "5",
             "--inject-net-fault", "disconnect:0"]
        )
        assert args.hosts == "h1:4,h2:8"
        assert args.heartbeat_timeout == 5.0
        assert args.inject_net_fault == "disconnect:0"

    def test_hosts_flag_requires_distributed_backend(self, capsys):
        rc = main(["solve", "cdd", "-n", "10", "--hosts", "h1:4"])
        assert rc == 2
        assert "--backend distributed" in capsys.readouterr().err

    def test_distributed_backend_requires_hosts_flag(self, capsys):
        rc = main(["solve", "cdd", "-n", "10", "--backend", "distributed"])
        assert rc == 2
        assert "--hosts" in capsys.readouterr().err

    def test_workers_flag_rejected_for_distributed(self, capsys):
        rc = main([
            "solve", "cdd", "-n", "10", "--backend", "distributed",
            "--hosts", "h1:4", "--workers", "2",
        ])
        assert rc == 2
        assert "does not apply" in capsys.readouterr().err

    def test_bad_bind_rejected(self, capsys):
        rc = main(["agent", "--bind", "127.0.0.1:notaport"])
        assert rc == 2
