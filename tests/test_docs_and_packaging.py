"""Documentation and packaging guards."""

from pathlib import Path


import repro

ROOT = Path(__file__).resolve().parents[1]


class TestDocsPresent:
    def test_readme_exists_and_mentions_paper(self):
        text = (ROOT / "README.md").read_text()
        assert "10.1109/IPDPSW.2016.66" in text
        assert "GT 560M" in text

    def test_design_inventory_complete(self):
        text = (ROOT / "DESIGN.md").read_text()
        # Every table/figure of the evaluation is indexed.
        for artifact in ("Table I", "Table II", "Table III", "Table IV",
                         "Table V", "Fig 11", "Fig 14", "Fig 16"):
            assert artifact in text, artifact
        # The substitution table documents the major stand-ins.
        for sub in ("GeForce GT 560M", "cuRAND", "OR-library", "Z_best"):
            assert sub in text, sub

    def test_readme_quickstart_runs(self):
        # The quickstart snippet from README, abbreviated.
        from repro import CDDSolver, biskup_instance

        instance = biskup_instance(n=10, h=0.4, k=1)
        result = CDDSolver(instance).solve(
            "parallel_sa", iterations=30, grid_size=1, block_size=16, seed=42
        )
        assert "objective" in result.summary()

    def test_examples_exist(self):
        examples = ROOT / "examples"
        expected = {
            "quickstart.py",
            "paper_walkthrough.py",
            "compare_metaheuristics.py",
            "ucddcp_compression.py",
            "device_profiling.py",
            "convergence_analysis.py",
        }
        assert expected <= {p.name for p in examples.glob("*.py")}

    def test_benchmarks_cover_all_tables_and_figures(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        for required in (
            "bench_table2_cdd_deviation.py",
            "bench_table3_cdd_speedup.py",
            "bench_table4_ucddcp_deviation.py",
            "bench_table5_ucddcp_speedup.py",
            "bench_fig11_runtime_surface.py",
            "bench_fig12_cdd_deviation_chart.py",
            "bench_fig13_cdd_speedup_chart.py",
            "bench_fig14_cdd_runtimes.py",
            "bench_fig15_ucddcp_deviation_chart.py",
            "bench_fig16_ucddcp_runtimes.py",
            "bench_fig17_ucddcp_speedup_chart.py",
        ):
            assert required in benches, required


class TestPackaging:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_public_api_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.bestknown
        import repro.core
        import repro.experiments
        import repro.gpusim
        import repro.instances
        import repro.kernels
        import repro.problems
        import repro.seqopt

    def test_all_exports_resolve(self):
        import importlib

        for mod_name in (
            "repro.problems", "repro.seqopt", "repro.gpusim",
            "repro.kernels", "repro.core", "repro.instances",
            "repro.bestknown", "repro.experiments", "repro.analysis",
        ):
            mod = importlib.import_module(mod_name)
            for name in getattr(mod, "__all__", []):
                assert hasattr(mod, name), f"{mod_name}.{name}"
