"""Serial and parallel DPSO."""

import numpy as np
import pytest

from repro.core.dpso import DPSOConfig, dpso_serial
from repro.core.parallel_dpso import ParallelDPSOConfig, parallel_dpso
from repro.instances.biskup import biskup_instance
from repro.problems.validation import validate_schedule
from repro.seqopt.batched import batched_cdd_objective

FAST = dict(iterations=100, grid_size=2, block_size=32, seed=6)


class TestSerialConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"iterations": 0},
            {"swarm_size": 1},
            {"w": 1.5},
            {"c1": -0.1},
            {"c2": 2.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DPSOConfig(**kwargs)


class TestSerialDPSO:
    def test_deterministic(self, paper_cdd):
        cfg = DPSOConfig(iterations=60, swarm_size=10, seed=3)
        r1 = dpso_serial(paper_cdd, cfg)
        r2 = dpso_serial(paper_cdd, cfg)
        assert r1.objective == r2.objective

    def test_schedule_valid(self, paper_cdd):
        r = dpso_serial(paper_cdd, DPSOConfig(iterations=60, swarm_size=10,
                                              seed=0))
        validate_schedule(paper_cdd, r.schedule, require_no_idle=True)

    def test_beats_random(self, paper_cdd, rng):
        r = dpso_serial(paper_cdd, DPSOConfig(iterations=100, swarm_size=15,
                                              seed=0))
        rand = batched_cdd_objective(
            paper_cdd, np.argsort(rng.random((200, 5)), axis=1)
        ).mean()
        assert r.objective < rand

    def test_gbest_monotone_history(self, paper_cdd):
        r = dpso_serial(
            paper_cdd,
            DPSOConfig(iterations=80, swarm_size=10, seed=1,
                       record_history=True),
        )
        assert r.history is not None
        assert np.all(np.diff(r.history) <= 0)

    def test_evaluations_counted(self, paper_cdd):
        r = dpso_serial(paper_cdd, DPSOConfig(iterations=10, swarm_size=7,
                                              seed=0))
        assert r.evaluations == 7 + 10 * 7

    def test_ucddcp(self, paper_ucddcp):
        r = dpso_serial(
            paper_ucddcp, DPSOConfig(iterations=120, swarm_size=12, seed=0)
        )
        validate_schedule(paper_ucddcp, r.schedule, require_no_idle=True)


class TestParallelDPSO:
    def test_deterministic(self, paper_cdd):
        r1 = parallel_dpso(paper_cdd, ParallelDPSOConfig(**FAST))
        r2 = parallel_dpso(paper_cdd, ParallelDPSOConfig(**FAST))
        assert r1.objective == r2.objective
        assert np.array_equal(r1.best_sequence, r2.best_sequence)

    def test_schedule_valid(self, paper_cdd):
        r = parallel_dpso(paper_cdd, ParallelDPSOConfig(**FAST))
        validate_schedule(paper_cdd, r.schedule, require_no_idle=True)

    def test_finds_small_optimum(self, paper_cdd):
        from repro.seqopt.exact import brute_force_cdd

        r = parallel_dpso(paper_cdd, ParallelDPSOConfig(**FAST))
        assert r.objective == pytest.approx(
            brute_force_cdd(paper_cdd).objective
        )

    def test_modeled_time_populated_and_slower_than_sa(self, paper_cdd):
        from repro.core.parallel_sa import ParallelSAConfig, parallel_sa

        d = parallel_dpso(
            paper_cdd, ParallelDPSOConfig(iterations=200, grid_size=2,
                                          block_size=32, seed=1)
        )
        s = parallel_sa(
            paper_cdd, ParallelSAConfig(iterations=200, grid_size=2,
                                        block_size=32, seed=1)
        )
        # The paper's Fig 14: parallel DPSO is slower than parallel SA at
        # the same generation count.
        assert d.modeled_device_time_s > s.modeled_device_time_s

    def test_history_monotone(self, paper_cdd):
        r = parallel_dpso(
            paper_cdd,
            ParallelDPSOConfig(**{**FAST, "record_history": True}),
        )
        assert r.history is not None
        assert np.all(np.diff(r.history) <= 0)
        assert r.history[-1] == r.objective

    def test_ucddcp(self, paper_ucddcp):
        r = parallel_dpso(paper_ucddcp, ParallelDPSOConfig(**FAST))
        validate_schedule(paper_ucddcp, r.schedule, require_no_idle=True)

    def test_probability_gate_zero_freezes_positions(self):
        # With w = c1 = c2 = 0 no operator is ever applied: the swarm never
        # moves, and gbest equals the best initial particle.
        inst = biskup_instance(10, 0.4, 1)
        r = parallel_dpso(
            inst,
            ParallelDPSOConfig(iterations=30, grid_size=1, block_size=16,
                               seed=8, w=0.0, c1=0.0, c2=0.0),
        )
        init = np.argsort(
            np.random.default_rng(8).random((16, 10)), axis=1
        )
        best_init = batched_cdd_objective(inst, init).min()
        assert r.objective == pytest.approx(best_init)

    def test_bigger_instance_runs(self):
        inst = biskup_instance(30, 0.6, 2)
        r = parallel_dpso(
            inst, ParallelDPSOConfig(iterations=80, grid_size=2,
                                     block_size=24, seed=0)
        )
        validate_schedule(inst, r.schedule, require_no_idle=True)


class TestCouplingSpectrum:
    def test_ring_valid_permutations(self):
        inst = biskup_instance(12, 0.4, 1)
        r = parallel_dpso(
            inst,
            ParallelDPSOConfig(iterations=60, grid_size=1, block_size=16,
                               seed=4, coupling="ring"),
        )
        validate_schedule(inst, r.schedule, require_no_idle=True)

    def test_information_flow_ordering_at_scale(self):
        # More coupling, better results (async <= ring <= coupled up to
        # noise) on a mid-size instance.
        inst = biskup_instance(100, 0.4, 1)
        objs = {}
        for c in ("async", "ring", "coupled"):
            objs[c] = parallel_dpso(
                inst,
                ParallelDPSOConfig(iterations=300, grid_size=2,
                                   block_size=48, seed=2, coupling=c),
            ).objective
        assert objs["coupled"] <= objs["async"]
        assert objs["ring"] <= objs["async"]

    def test_unknown_coupling_rejected(self):
        with pytest.raises(ValueError, match="coupling"):
            ParallelDPSOConfig(coupling="mesh")

    def test_ring_deterministic(self, paper_cdd):
        cfg = ParallelDPSOConfig(iterations=50, grid_size=1, block_size=16,
                                 seed=9, coupling="ring")
        assert (parallel_dpso(paper_cdd, cfg).objective
                == parallel_dpso(paper_cdd, cfg).objective)
