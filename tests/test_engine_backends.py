"""Engine-layer tests: backend parity and modeled-timing stability.

Two invariants anchor the engine refactor:

* **Trajectory parity** -- the vectorized backend runs the very same kernel
  bodies with the very same counter-based RNG stream, so for any instance
  and seed it must return the *identical* best sequence and objective as
  the cycle-modeled gpusim backend, across every SA variant and DPSO
  coupling and both problem families.
* **Timing stability** -- the gpusim backend's modeled durations are part
  of the reproduction (the paper's runtime/speedup tables); they must stay
  byte-identical to the values recorded before the engine refactor.
"""

import numpy as np
import pytest

from repro.core.engine import (
    BACKENDS,
    GpusimBackend,
    MultiprocessBackend,
    VectorizedBackend,
    adapter_for,
    create_backend,
)
from repro.core.parallel_dpso import ParallelDPSOConfig, parallel_dpso
from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.core.solver import CDDSolver
from repro.instances.biskup import biskup_instance
from repro.instances.ucddcp_gen import ucddcp_instance

SA_FAST = dict(iterations=80, grid_size=2, block_size=32, seed=7)
DPSO_FAST = dict(iterations=60, grid_size=2, block_size=32, seed=7)


@pytest.fixture(scope="module")
def cdd():
    return biskup_instance(20, 0.4, 1)


@pytest.fixture(scope="module")
def ucd():
    return ucddcp_instance(10, 1)


class TestBackendParity:
    @pytest.mark.parametrize("variant", ["async", "sync", "domain"])
    def test_sa_variants_identical_cdd(self, cdd, variant):
        gp = parallel_sa(cdd, ParallelSAConfig(variant=variant, **SA_FAST))
        vec = parallel_sa(
            cdd, ParallelSAConfig(variant=variant, **SA_FAST),
            backend="vectorized",
        )
        assert vec.objective == gp.objective
        assert np.array_equal(vec.best_sequence, gp.best_sequence)

    @pytest.mark.parametrize("variant", ["async", "sync", "domain"])
    def test_sa_variants_identical_ucddcp(self, ucd, variant):
        gp = parallel_sa(ucd, ParallelSAConfig(variant=variant, **SA_FAST))
        vec = parallel_sa(
            ucd, ParallelSAConfig(variant=variant, **SA_FAST),
            backend="vectorized",
        )
        assert vec.objective == gp.objective
        assert np.array_equal(vec.best_sequence, gp.best_sequence)

    @pytest.mark.parametrize("coupling", ["async", "ring", "coupled"])
    def test_dpso_couplings_identical_cdd(self, cdd, coupling):
        gp = parallel_dpso(
            cdd, ParallelDPSOConfig(coupling=coupling, **DPSO_FAST)
        )
        vec = parallel_dpso(
            cdd, ParallelDPSOConfig(coupling=coupling, **DPSO_FAST),
            backend="vectorized",
        )
        assert vec.objective == gp.objective
        assert np.array_equal(vec.best_sequence, gp.best_sequence)

    @pytest.mark.parametrize("coupling", ["async", "ring", "coupled"])
    def test_dpso_couplings_identical_ucddcp(self, ucd, coupling):
        gp = parallel_dpso(
            ucd, ParallelDPSOConfig(coupling=coupling, **DPSO_FAST)
        )
        vec = parallel_dpso(
            ucd, ParallelDPSOConfig(coupling=coupling, **DPSO_FAST),
            backend="vectorized",
        )
        assert vec.objective == gp.objective
        assert np.array_equal(vec.best_sequence, gp.best_sequence)

    def test_vectorized_reports_no_modeled_timings(self, cdd):
        vec = parallel_sa(cdd, ParallelSAConfig(**SA_FAST),
                          backend="vectorized")
        assert vec.modeled_device_time_s is None
        assert vec.modeled_kernel_time_s is None
        assert vec.modeled_memcpy_time_s is None
        assert vec.params["backend"] == "vectorized"

    def test_history_identical(self, cdd):
        cfgs = dict(record_history=True, **SA_FAST)
        gp = parallel_sa(cdd, ParallelSAConfig(**cfgs))
        vec = parallel_sa(cdd, ParallelSAConfig(**cfgs),
                          backend="vectorized")
        assert np.array_equal(vec.history, gp.history)

    def test_solver_facade_backend_kwarg(self, cdd):
        solver = CDDSolver(cdd)
        gp = solver.solve("parallel_sa", backend="gpusim", **SA_FAST)
        vec = solver.solve("parallel_sa", backend="vectorized", **SA_FAST)
        assert vec.objective == gp.objective
        assert gp.params["backend"] == "gpusim"
        assert vec.params["backend"] == "vectorized"


class TestModeledTimingStability:
    """Modeled gpusim timings must match values recorded at the seed."""

    # (device_time_s, kernel_time_s, memcpy_time_s) captured from the
    # pre-engine drivers on the default GT 560M spec.
    SA_GOLDEN = {
        ("cdd", "async"): (0.0074451589247311835, 0.0073642082580645165,
                           8.095066666666667e-05),
        ("cdd", "sync"): (0.00750167505376344, 0.007420724387096773,
                          8.095066666666667e-05),
        ("cdd", "domain"): (0.0074451589247311835, 0.0073642082580645165,
                            8.095066666666667e-05),
        ("ucddcp", "async"): (0.005755292903225797, 0.005654788903225796,
                              0.00010050400000000001),
    }
    DPSO_GOLDEN = {
        "cdd": (0.017655583010752672, 0.017574632344086006,
                8.095066666666667e-05),
        "ucddcp": (0.010370878279569916, 0.010270374279569915,
                   0.00010050400000000001),
    }
    SA_OBJECTIVES = {
        ("cdd", "async"): 2637.0,
        ("cdd", "sync"): 2521.0,
        ("cdd", "domain"): 2655.0,
        ("ucddcp", "async"): 852.0,
    }
    DPSO_OBJECTIVES = {
        ("cdd", "async"): 3350.0,
        ("cdd", "ring"): 2356.0,
        ("cdd", "coupled"): 2269.0,
        ("ucddcp", "async"): 875.0,
    }

    @pytest.mark.parametrize("kind,variant", sorted(SA_GOLDEN))
    def test_sa_timings_unchanged(self, cdd, ucd, kind, variant):
        inst = cdd if kind == "cdd" else ucd
        r = parallel_sa(inst, ParallelSAConfig(variant=variant, **SA_FAST))
        dev, kern, mem = self.SA_GOLDEN[(kind, variant)]
        assert r.modeled_device_time_s == dev
        assert r.modeled_kernel_time_s == kern
        assert r.modeled_memcpy_time_s == mem
        assert r.objective == self.SA_OBJECTIVES[(kind, variant)]

    @pytest.mark.parametrize("kind,coupling", sorted(DPSO_OBJECTIVES))
    def test_dpso_timings_unchanged(self, cdd, ucd, kind, coupling):
        inst = cdd if kind == "cdd" else ucd
        r = parallel_dpso(
            inst, ParallelDPSOConfig(coupling=coupling, **DPSO_FAST)
        )
        # The update/fitness pipeline cost does not depend on the coupling,
        # so all couplings share one timing row per problem family.
        dev, kern, mem = self.DPSO_GOLDEN[kind]
        assert r.modeled_device_time_s == dev
        assert r.modeled_kernel_time_s == kern
        assert r.modeled_memcpy_time_s == mem
        assert r.objective == self.DPSO_OBJECTIVES[(kind, coupling)]


class TestBackendRegistry:
    def test_registry_contents(self):
        assert set(BACKENDS) == {
            "gpusim",
            "vectorized",
            "multiprocess",
            "distributed",
        }

    def test_create_by_name(self):
        assert isinstance(create_backend("gpusim"), GpusimBackend)
        assert isinstance(create_backend("vectorized"), VectorizedBackend)
        assert isinstance(create_backend("multiprocess"), MultiprocessBackend)

    def test_create_passthrough_instance(self):
        backend = VectorizedBackend()
        assert create_backend(backend) is backend

    def test_unknown_backend_lists_registered(self):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("cuda")
        with pytest.raises(ValueError, match="gpusim"):
            parallel_sa(
                biskup_instance(5, 0.4, 1),
                ParallelSAConfig(iterations=2, grid_size=1, block_size=4),
                backend="fpga",
            )

    def test_unknown_solver_method_lists_registered(self):
        solver = CDDSolver(biskup_instance(5, 0.4, 1))
        with pytest.raises(ValueError, match="parallel_dpso"):
            solver.solve("quantum_annealing")


class TestAdapters:
    def test_adapter_kinds(self, cdd, ucd):
        assert adapter_for(cdd).kind == "cdd"
        assert adapter_for(ucd).kind == "ucddcp"

    def test_adapter_rejects_foreign_types(self):
        with pytest.raises(TypeError, match="unsupported problem instance"):
            adapter_for(object())

    def test_scalar_matches_batched(self, cdd, ucd):
        rng = np.random.default_rng(3)
        for inst in (cdd, ucd):
            adapter = adapter_for(inst)
            seqs = np.argsort(rng.random((8, inst.n)), axis=1)
            batched = adapter.batched_objective(seqs)
            scalars = [adapter.objective(s) for s in seqs]
            np.testing.assert_allclose(batched, scalars)

    def test_pure_python_matches_numpy(self, cdd, ucd):
        rng = np.random.default_rng(4)
        for inst in (cdd, ucd):
            adapter = adapter_for(inst)
            py_eval = adapter.pure_python_evaluator()
            for _ in range(4):
                seq = rng.permutation(inst.n)
                assert py_eval(seq) == pytest.approx(adapter.objective(seq))

    def test_staging_matches_fitness_param_names(self, cdd, ucd):
        for inst in (cdd, ucd):
            adapter = adapter_for(inst)
            staged = {name for name, _ in adapter.staging_arrays()}
            assert staged == set(adapter.fitness_param_names)
