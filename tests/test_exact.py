"""Exact solvers: brute force and the V-shaped partition DP."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.problems.cdd import CDDInstance
from repro.seqopt.cdd_linear import optimize_cdd_sequence
from repro.seqopt.exact import (
    brute_force_cdd,
    brute_force_ucddcp,
    vshape_optimal_cdd,
)
from tests.conftest import cdd_instances, ucddcp_instances


@st.composite
def unrestricted_cdd(draw, min_n=2, max_n=7):
    n = draw(st.integers(min_n, max_n))
    p = draw(st.lists(st.integers(1, 15), min_size=n, max_size=n))
    a = draw(st.lists(st.integers(0, 10), min_size=n, max_size=n))
    b = draw(st.lists(st.integers(0, 15), min_size=n, max_size=n))
    slack = draw(st.integers(0, 25))
    return CDDInstance(
        np.asarray(p, float), np.asarray(a, float), np.asarray(b, float),
        float(sum(p) + slack), name=f"hyp_unres_n{n}",
    )


class TestBruteForce:
    def test_size_guard(self):
        inst = CDDInstance(np.ones(10), np.ones(10), np.ones(10), 5.0)
        with pytest.raises(ValueError, match="limited"):
            brute_force_cdd(inst)

    def test_optimal_beats_every_sequence(self, paper_cdd, rng):
        best = brute_force_cdd(paper_cdd)
        for _ in range(30):
            seq = rng.permutation(5)
            assert best.objective <= optimize_cdd_sequence(
                paper_cdd, seq
            ).objective + 1e-9

    def test_paper_example_optimum_at_most_identity(self, paper_cdd):
        best = brute_force_cdd(paper_cdd)
        assert best.objective <= 81.0

    @given(inst=ucddcp_instances(min_n=2, max_n=5))
    def test_ucddcp_brute_force_is_lower_bound(self, inst):
        best = brute_force_ucddcp(inst)
        # The identity sequence cannot beat the enumerated optimum.
        from repro.seqopt.ucddcp_linear import optimize_ucddcp_sequence

        ident = optimize_ucddcp_sequence(inst, np.arange(inst.n))
        assert best.objective <= ident.objective + 1e-9


class TestVShapeDP:
    def test_rejects_restrictive(self, paper_cdd):
        with pytest.raises(ValueError, match="unrestricted"):
            vshape_optimal_cdd(paper_cdd)

    def test_size_guard(self):
        n = 25
        inst = CDDInstance(np.ones(n), np.ones(n), np.ones(n), float(n))
        with pytest.raises(ValueError, match="limited"):
            vshape_optimal_cdd(inst)

    @given(inst=unrestricted_cdd(min_n=2, max_n=7))
    def test_matches_brute_force(self, inst):
        dp = vshape_optimal_cdd(inst)
        bf = brute_force_cdd(inst)
        assert dp.objective == pytest.approx(bf.objective, abs=1e-6)

    @given(inst=unrestricted_cdd(min_n=2, max_n=7))
    def test_vshape_structure(self, inst):
        # Early block: alpha/p non-decreasing; tardy block: p/beta
        # non-decreasing (where defined).
        s = vshape_optimal_cdd(inst)
        d = inst.due_date
        early = s.completion <= d + 1e-9
        p = inst.processing[s.sequence]
        a = inst.alpha[s.sequence]
        b = inst.beta[s.sequence]
        ratios_e = (a / p)[early]
        assert np.all(np.diff(ratios_e) >= -1e-12)
        tardy = ~early
        bt = b[tardy]
        if np.all(bt > 0):
            ratios_t = (p[tardy] / bt)
            assert np.all(np.diff(ratios_t) >= -1e-12)

    def test_bigger_instance_runs(self):
        rng = np.random.default_rng(9)
        n = 14
        p = rng.integers(1, 20, n).astype(float)
        a = rng.integers(1, 10, n).astype(float)
        b = rng.integers(1, 15, n).astype(float)
        inst = CDDInstance(p, a, b, float(p.sum() + 5))
        s = vshape_optimal_cdd(inst)
        # Sanity: beats 50 random sequences.
        for _ in range(50):
            seq = rng.permutation(n)
            assert s.objective <= optimize_cdd_sequence(inst, seq).objective + 1e-9
