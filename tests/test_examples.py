"""The shipped examples must run and assert their own claims."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_paper_walkthrough_asserts_paper_values(self):
        out = run_example("paper_walkthrough.py")
        assert "objective = 81   (paper: 81)" in out
        assert "objective = 77   (paper: 77)" in out
        assert "All values match the paper." in out

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "parallel SA" in out
        assert "improvement over random" in out

    def test_orlib_workflow(self):
        out = run_example("orlib_workflow.py")
        assert "round trip lossless: yes" in out

    def test_compare_metaheuristics_small(self):
        out = run_example(
            "compare_metaheuristics.py", "--sizes", "10", "20",
            "--iterations", "120",
        )
        assert "DPSO vs SA" in out

    def test_baseline_shootout_small(self):
        out = run_example("baseline_shootout.py", "-n", "15",
                          "--budget", "3000")
        assert "winner:" in out
        assert "polish" in out
