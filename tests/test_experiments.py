"""Experiment harness: config, tables, ascii plots, studies at smoke scale."""

import numpy as np
import pytest

from repro.bestknown.store import BestKnownStore
from repro.experiments.ablation import (
    run_blocksize_ablation,
    run_cooling_ablation,
    run_sync_vs_async,
)
from repro.experiments.ascii_plot import bar_chart, grouped_bar_chart, line_plot
from repro.experiments.config import SCALES, get_scale
from repro.experiments.deviation import run_deviation_study
from repro.experiments.paper_data import (
    TABLE2_CDD_DEVIATION,
    TABLE3_CDD_SPEEDUP_VS_7,
    TABLE4_UCDDCP_DEVIATION,
    TABLE5_UCDDCP_SPEEDUP,
)
from repro.experiments.runtime import run_runtime_curves, run_runtime_surface
from repro.experiments.speedup import run_speedup_study
from repro.experiments.tables import format_value, render_table

SMOKE = SCALES["smoke"]


class TestConfig:
    def test_scales_exist(self):
        assert set(SCALES) == {"smoke", "quick", "full"}

    def test_full_matches_paper_grid(self):
        full = SCALES["full"]
        assert full.sizes == (10, 20, 50, 100, 200, 500, 1000)
        assert full.h_factors == (0.2, 0.4, 0.6, 0.8)
        assert full.k_values == tuple(range(1, 11))
        assert full.iterations_low == 1000
        assert full.iterations_high == 5000
        assert full.population == 768
        assert full.instances_per_size == 40

    def test_iteration_ratio_is_five(self):
        for scale in SCALES.values():
            assert scale.iterations_high == 5 * scale.iterations_low

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale().name == "smoke"

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("giant")


class TestPaperData:
    def test_tables_cover_all_sizes(self):
        for table in (TABLE2_CDD_DEVIATION, TABLE3_CDD_SPEEDUP_VS_7,
                      TABLE4_UCDDCP_DEVIATION, TABLE5_UCDDCP_SPEEDUP):
            assert sorted(table) == [10, 20, 50, 100, 200, 500, 1000]
            assert all(len(v) == 4 for v in table.values())

    def test_known_anchor_values(self):
        assert TABLE2_CDD_DEVIATION[1000][0] == 1.904
        assert TABLE3_CDD_SPEEDUP_VS_7[1000][0] == 111.2
        assert TABLE4_UCDDCP_DEVIATION[500][1] == -0.777
        assert TABLE5_UCDDCP_SPEEDUP[1000][0] == 47.383


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [[1, 2.5], [33, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "2.500" in out

    def test_format_value(self):
        assert format_value(1.23456) == "1.235"
        assert format_value(float("nan")) == "-"
        assert format_value(12345.6) == "12346"
        assert format_value("x") == "x"

    def test_bar_chart_negative(self):
        out = bar_chart(["a", "b"], [2.0, -1.0])
        assert "-" in out.splitlines()[1]

    def test_grouped_bar_chart(self):
        out = grouped_bar_chart(["g1"], {"s1": [1.0], "s2": [2.0]})
        assert "g1:" in out and "s1" in out

    def test_line_plot_log_and_linear(self):
        out = line_plot([1, 2, 3], {"a": [1.0, 10.0, 100.0]}, logy=True)
        assert "log scale" in out
        out2 = line_plot([1, 2], {"a": [0.0, 1.0]}, logy=True)
        assert "log scale" not in out2  # falls back for nonpositive data

    def test_line_plot_empty(self):
        assert line_plot([], {}, title="t") == "t"


class TestStudies:
    @pytest.fixture()
    def store(self, tmp_store_path):
        return BestKnownStore(tmp_store_path)

    def test_deviation_study_cdd(self, store):
        study = run_deviation_study("cdd", SMOKE, store)
        assert study.mean_deviation.shape == (2, 4)
        # The high-budget SA must not be (much) worse than the low-budget
        # SA on average.
        assert study.column(f"SA_{SMOKE.iterations_high}").mean() <= (
            study.column(f"SA_{SMOKE.iterations_low}").mean() + 1.0
        )
        out = study.render()
        assert "Paper (Table II)" in out
        assert len(study.runs) == 2 * SMOKE.instances_per_size * 4

    def test_deviation_study_ucddcp(self, store):
        study = run_deviation_study("ucddcp", SMOKE, store)
        assert study.problem == "ucddcp"
        assert "Paper (Table IV)" in study.render()

    def test_deviation_unknown_problem(self, store):
        with pytest.raises(ValueError):
            run_deviation_study("tsp", SMOKE, store)

    def test_speedup_study(self):
        study = run_speedup_study("cdd", SMOKE, use_cache=False)
        modeled = study.matrix("speedup_modeled")
        assert modeled.shape == (2, 4)
        assert np.all(modeled > 0)
        # SA speedups beat DPSO speedups against the common reference
        # (DPSO kernels are slower), as in Table III.
        assert np.all(modeled[:, 0] > modeled[:, 2])
        out = study.render()
        assert "Paper (Table III" in out

    def test_speedup_cache(self):
        a = run_speedup_study("cdd", SMOKE, use_cache=True)
        b = run_speedup_study("cdd", SMOKE, use_cache=True)
        assert a is b

    def test_runtime_surface(self):
        surf = run_runtime_surface(SMOKE)
        assert surf.seconds.shape == (
            len(SMOKE.fig11_thread_counts), len(SMOKE.fig11_generations)
        )
        # Linear in generations.
        np.testing.assert_allclose(
            surf.seconds[:, 1] / surf.seconds[:, 0],
            SMOKE.fig11_generations[1] / SMOKE.fig11_generations[0],
        )
        # Non-decreasing in thread count.
        assert np.all(np.diff(surf.per_launch_s) >= -1e-12)
        assert "Fig 11" in surf.render()

    def test_runtime_curves(self):
        curves = run_runtime_curves("cdd", SMOKE)
        out = curves.render()
        assert "Fig 14" in out and "CPU serial" in out


class TestAblations:
    def test_blocksize(self):
        res = run_blocksize_ablation(SMOKE, total_threads=384)
        assert len(res.block_sizes) == len(res.kernel_time_s)
        assert np.all(res.kernel_time_s > 0)
        assert "192" in res.render()

    def test_sync_vs_async(self):
        res = run_sync_vs_async(SMOKE, replicates=1)
        assert res.async_objective.shape == res.sync_objective.shape
        assert "sync" in res.render()

    def test_cooling(self):
        res = run_cooling_ablation(SMOKE, replicates=1)
        assert len(res.rates) == len(res.objective)
        assert "0.88" in res.render() or "0.880" in res.render()


class TestNewAblations:
    def test_texture(self):
        from repro.experiments.ablation import run_texture_ablation

        res = run_texture_ablation(SMOKE)
        assert res.texture_s < res.plain_s
        assert 0.0 < res.saving_pct < 50.0
        assert "Texture" in res.render()

    def test_coupling(self):
        from repro.experiments.ablation import run_coupling_ablation

        res = run_coupling_ablation(SMOKE, replicates=1)
        assert res.async_objective.shape == res.coupled_objective.shape
        assert "coupled" in res.render()

    def test_refresh(self):
        from repro.experiments.ablation import run_refresh_ablation

        res = run_refresh_ablation(SMOKE, intervals=(1, 10), replicates=1)
        assert len(res.objective) == 2
        assert "refresh" in res.render()

    def test_runner_dispatch(self):
        from repro.experiments.runner import run_experiment

        out = run_experiment("texture", SMOKE)
        assert "Texture" in out

    def test_runner_unknown(self):
        from repro.experiments.runner import run_experiment

        with pytest.raises(KeyError):
            run_experiment("table42", SMOKE)


class TestCheckpointing:
    def _runner(self, tmp_path, resume):
        from repro.resilience import ResilientRunner

        return ResilientRunner(checkpoint_dir=tmp_path, resume=resume)

    def test_checkpoint_resume_skips_done_work(self, tmp_path, tmp_store_path):
        from repro.bestknown.store import BestKnownStore
        from repro.experiments.deviation import run_deviation_study

        store = BestKnownStore(tmp_store_path)
        first = run_deviation_study(
            "cdd", SMOKE, store, runner=self._runner(tmp_path, resume=False)
        )
        ckpt = tmp_path / "deviation_cdd_smoke.jsonl"
        assert ckpt.exists()
        import time

        t0 = time.perf_counter()
        second = run_deviation_study(
            "cdd", SMOKE, store, runner=self._runner(tmp_path, resume=True)
        )
        resumed_in = time.perf_counter() - t0
        # Resuming does no solver work: it must be near-instant.
        assert resumed_in < 2.0
        assert all(o.from_checkpoint for o in second.report.completed)
        np.testing.assert_allclose(second.mean_deviation,
                                   first.mean_deviation)

    def test_without_resume_checkpoint_is_discarded(self, tmp_path,
                                                    tmp_store_path):
        from repro.bestknown.store import BestKnownStore
        from repro.experiments.deviation import run_deviation_study

        store = BestKnownStore(tmp_store_path)
        run_deviation_study(
            "cdd", SMOKE, store, runner=self._runner(tmp_path, resume=False)
        )
        again = run_deviation_study(
            "cdd", SMOKE, store, runner=self._runner(tmp_path, resume=False)
        )
        # A fresh (non-resume) run recomputes everything.
        assert not any(o.from_checkpoint for o in again.report.completed)

    def test_checkpoint_is_jsonl(self, tmp_path, tmp_store_path):
        import json

        from repro.bestknown.store import BestKnownStore
        from repro.experiments.deviation import run_deviation_study

        run_deviation_study(
            "cdd", SMOKE, BestKnownStore(tmp_store_path),
            runner=self._runner(tmp_path, resume=False),
        )
        lines = (
            (tmp_path / "deviation_cdd_smoke.jsonl")
            .read_text().strip().splitlines()
        )
        assert lines
        rec = json.loads(lines[0])
        assert "|SA_" in rec["key"] or "|DPSO_" in rec["key"]
        assert "deviation_pct" in rec["payload"]
        assert rec["schema"] == 2
        assert "crc" in rec
