"""Failure injection: the system must fail loudly and stay consistent."""

import json

import numpy as np
import pytest

from repro.bestknown.store import BestKnownStore
from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.gpusim.device import GEFORCE_GT_560M, Device
from repro.gpusim.errors import (
    CudaError,
    DeviceAllocationError,
    InvalidLaunchError,
)
from repro.gpusim.kernel import KernelCost, kernel
from repro.gpusim.launch import linear_config
from repro.instances.biskup import biskup_instance


class TestDeviceFailures:
    def test_oom_device_fails_cleanly(self):
        # A device too small for the SA working set: the driver must raise
        # a DeviceAllocationError, not corrupt anything.
        tiny = GEFORCE_GT_560M.with_overrides(global_mem_bytes=4 * 1024)
        inst = biskup_instance(100, 0.4, 1)
        with pytest.raises(DeviceAllocationError):
            parallel_sa(
                inst,
                ParallelSAConfig(iterations=10, grid_size=2, block_size=32,
                                 seed=0, device_spec=tiny),
            )

    def test_kernel_exception_leaves_clocks_consistent(self):
        dev = Device(seed=0)
        buf = dev.malloc(8)

        @kernel("boom", registers=8,
                cost=lambda ctx, b: KernelCost(1.0, 1.0))
        def boom(ctx, b):
            """Always raises."""
            raise RuntimeError("injected kernel fault")

        busy_before = dev.device_busy_until
        with pytest.raises(RuntimeError, match="injected"):
            dev.launch(boom, linear_config(32, 32), buf)
        # The failed launch was not enqueued; a subsequent good launch works.
        assert dev.device_busy_until == busy_before

        @kernel("ok", registers=8, cost=lambda ctx, b: KernelCost(1.0, 1.0))
        def ok(ctx, b):
            """Trivial kernel."""
            b.array[:] = 1.0

        dev.launch(ok, linear_config(32, 32), buf)
        assert np.all(dev.memcpy_dtoh(buf) == 1.0)

    def test_impossible_block_rejected_before_execution(self):
        dev = Device(seed=0)
        buf = dev.malloc(8)

        ran = []

        @kernel("greedy", registers=64,
                cost=lambda ctx, b: KernelCost(1.0, 1.0))
        def greedy(ctx, b):
            """Should never run (register file exhausted)."""
            ran.append(True)

        with pytest.raises(InvalidLaunchError):
            dev.launch(greedy, linear_config(1024, 1024), buf)
        assert not ran

    def test_oversized_shared_memory_rejected_before_execution(self):
        dev = Device(seed=0)
        buf = dev.malloc(8)
        ran = []

        @kernel("shared_hog", registers=8,
                cost=lambda ctx, b: KernelCost(1.0, 1.0),
                shared_mem=1024 * 1024)
        def shared_hog(ctx, b):
            """Should never run (shared memory exhausted)."""
            ran.append(True)

        with pytest.raises(CudaError):
            dev.launch(shared_hog, linear_config(32, 32), buf)
        assert not ran

    def test_fragmented_allocator_accounting(self):
        mem_bytes = 100 * 1024
        dev = Device(
            spec=GEFORCE_GT_560M.with_overrides(global_mem_bytes=mem_bytes),
            seed=0,
        )
        # Alloc/free churn must never leak accounted bytes.
        for round_ in range(20):
            bufs = [dev.malloc(512) for _ in range(8)]
            for b in bufs[::2]:
                b.free()
            extra = dev.malloc(1024)
            for b in bufs[1::2]:
                b.free()
            extra.free()
        assert dev.global_mem.used_bytes == 0


class TestStoreFailures:
    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "bestknown.json"
        path.write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            BestKnownStore(path)

    def test_missing_fields_raise(self, tmp_path):
        path = tmp_path / "bestknown.json"
        path.write_text(json.dumps({"x": {"objective": 1.0}}))
        with pytest.raises(TypeError):
            BestKnownStore(path)

    def test_save_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "bestknown.json"
        store = BestKnownStore(path)
        from repro.bestknown.store import BestKnownEntry

        store.update("a", BestKnownEntry(1.0, "x"))
        store.save()
        assert path.exists()


class TestSolverInputFailures:
    def test_solver_rejects_bad_config_before_any_work(self, paper_cdd):
        from repro.core.solver import CDDSolver

        with pytest.raises(ValueError):
            CDDSolver(paper_cdd).solve("parallel_sa", iterations=-5)

    def test_nan_instance_rejected_at_construction(self):
        from repro.problems.cdd import CDDInstance

        with pytest.raises(ValueError):
            CDDInstance([1.0, float("inf")], [1, 1], [1, 1], 2.0)

    def test_mismatched_sequence_rejected(self, paper_cdd):
        from repro.seqopt.cdd_linear import optimize_cdd_sequence

        # A non-permutation silently indexes wrong data; the schedule layer
        # must catch it at validation time.
        from repro.problems.validation import ScheduleError, validate_schedule

        sched = optimize_cdd_sequence(paper_cdd, np.array([0, 0, 1, 2, 3]))
        with pytest.raises(ScheduleError):
            validate_schedule(paper_cdd, sched)
