"""Failure injection: the system must fail loudly and stay consistent."""

import json

import numpy as np
import pytest

from repro.bestknown.store import BestKnownStore
from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.gpusim.device import GEFORCE_GT_560M, Device
from repro.gpusim.errors import (
    CudaError,
    DeviceAllocationError,
    InvalidLaunchError,
)
from repro.gpusim.kernel import KernelCost, kernel
from repro.gpusim.launch import linear_config
from repro.instances.biskup import biskup_instance


class TestDeviceFailures:
    def test_oom_device_fails_cleanly(self):
        # A device too small for the SA working set: the driver must raise
        # a DeviceAllocationError, not corrupt anything.
        tiny = GEFORCE_GT_560M.with_overrides(global_mem_bytes=4 * 1024)
        inst = biskup_instance(100, 0.4, 1)
        with pytest.raises(DeviceAllocationError):
            parallel_sa(
                inst,
                ParallelSAConfig(iterations=10, grid_size=2, block_size=32,
                                 seed=0, device_spec=tiny),
            )

    def test_kernel_exception_leaves_clocks_consistent(self):
        dev = Device(seed=0)
        buf = dev.malloc(8)

        @kernel("boom", registers=8,
                cost=lambda ctx, b: KernelCost(1.0, 1.0))
        def boom(ctx, b):
            """Always raises."""
            raise RuntimeError("injected kernel fault")

        busy_before = dev.device_busy_until
        with pytest.raises(RuntimeError, match="injected"):
            dev.launch(boom, linear_config(32, 32), buf)
        # The failed launch was not enqueued; a subsequent good launch works.
        assert dev.device_busy_until == busy_before

        @kernel("ok", registers=8, cost=lambda ctx, b: KernelCost(1.0, 1.0))
        def ok(ctx, b):
            """Trivial kernel."""
            b.array[:] = 1.0

        dev.launch(ok, linear_config(32, 32), buf)
        assert np.all(dev.memcpy_dtoh(buf) == 1.0)

    def test_impossible_block_rejected_before_execution(self):
        dev = Device(seed=0)
        buf = dev.malloc(8)

        ran = []

        @kernel("greedy", registers=64,
                cost=lambda ctx, b: KernelCost(1.0, 1.0))
        def greedy(ctx, b):
            """Should never run (register file exhausted)."""
            ran.append(True)

        with pytest.raises(InvalidLaunchError):
            dev.launch(greedy, linear_config(1024, 1024), buf)
        assert not ran

    def test_oversized_shared_memory_rejected_before_execution(self):
        dev = Device(seed=0)
        buf = dev.malloc(8)
        ran = []

        @kernel("shared_hog", registers=8,
                cost=lambda ctx, b: KernelCost(1.0, 1.0),
                shared_mem=1024 * 1024)
        def shared_hog(ctx, b):
            """Should never run (shared memory exhausted)."""
            ran.append(True)

        with pytest.raises(CudaError):
            dev.launch(shared_hog, linear_config(32, 32), buf)
        assert not ran

    def test_fragmented_allocator_accounting(self):
        mem_bytes = 100 * 1024
        dev = Device(
            spec=GEFORCE_GT_560M.with_overrides(global_mem_bytes=mem_bytes),
            seed=0,
        )
        # Alloc/free churn must never leak accounted bytes.
        for round_ in range(20):
            bufs = [dev.malloc(512) for _ in range(8)]
            for b in bufs[::2]:
                b.free()
            extra = dev.malloc(1024)
            for b in bufs[1::2]:
                b.free()
            extra.free()
        assert dev.global_mem.used_bytes == 0


class TestStoreFailures:
    def test_corrupt_json_recovered(self, tmp_path):
        # A corrupted store must not kill the experiment run: the bad file
        # is moved aside (evidence preserved) and the store starts empty.
        path = tmp_path / "bestknown.json"
        path.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="corrupted"):
            store = BestKnownStore(path)
        assert len(store) == 0
        backup = tmp_path / "bestknown.json.corrupt"
        assert backup.read_text() == "{not json"
        assert not path.exists()

    def test_missing_fields_recovered(self, tmp_path):
        path = tmp_path / "bestknown.json"
        path.write_text(json.dumps({"x": {"objective": 1.0}}))
        with pytest.warns(RuntimeWarning, match="corrupted"):
            store = BestKnownStore(path)
        assert len(store) == 0
        assert (tmp_path / "bestknown.json.corrupt").exists()

    def test_second_corruption_gets_numbered_backup(self, tmp_path):
        path = tmp_path / "bestknown.json"
        for _ in range(2):
            path.write_text("]")
            with pytest.warns(RuntimeWarning):
                BestKnownStore(path)
        assert (tmp_path / "bestknown.json.corrupt").exists()
        assert (tmp_path / "bestknown.json.corrupt1").exists()

    def test_recovered_store_saves_cleanly(self, tmp_path):
        from repro.bestknown.store import BestKnownEntry

        path = tmp_path / "bestknown.json"
        path.write_text("oops")
        with pytest.warns(RuntimeWarning):
            store = BestKnownStore(path)
        store.update("a", BestKnownEntry(1.0, "x"))
        store.save()
        assert BestKnownStore(path).get("a").objective == 1.0

    def test_save_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "bestknown.json"
        store = BestKnownStore(path)
        from repro.bestknown.store import BestKnownEntry

        store.update("a", BestKnownEntry(1.0, "x"))
        store.save()
        assert path.exists()

    def test_save_is_atomic_no_temp_residue(self, tmp_path):
        from repro.bestknown.store import BestKnownEntry

        path = tmp_path / "bestknown.json"
        store = BestKnownStore(path)
        store.update("a", BestKnownEntry(1.0, "x"))
        store.save()
        leftovers = [p for p in tmp_path.iterdir() if p.name != path.name]
        assert leftovers == []


class TestInjectedFaults:
    """Deterministic fault injection through the resilience layer."""

    def _study(self, store, runner):
        from repro.experiments.config import SCALES
        from repro.experiments.deviation import run_deviation_study

        return run_deviation_study("cdd", SCALES["smoke"], store,
                                   runner=runner)

    @pytest.fixture()
    def store(self, tmp_store_path):
        return BestKnownStore(tmp_store_path)

    def _runner(self, plan=None, **kwargs):
        from repro.resilience import ResilientRunner, RetryPolicy

        return ResilientRunner(
            policy=RetryPolicy(max_retries=2, backoff_base_s=0.0,
                               backoff_max_s=0.0),
            fault_plan=plan,
            sleep=lambda s: None,
            **kwargs,
        )

    def test_transient_fault_retried_to_success(self, store):
        from repro.resilience import FaultPlan, FaultSpec

        plan = FaultPlan([FaultSpec(op="launch", at=300, kind="transient")])
        clean = self._study(store, self._runner())
        faulted = self._study(store, self._runner(plan))

        report = faulted.report
        assert not report.failed
        retried = [o for o in report.completed if o.attempts > 1]
        assert len(retried) == 1 and retried[0].attempts == 2
        # The retried cell recomputes from the same seed: identical study.
        np.testing.assert_array_equal(clean.mean_deviation,
                                      faulted.mean_deviation)
        assert plan.fired == [("launch", 300, "transient")]

    def test_fatal_fault_fails_without_retry(self, store):
        from repro.resilience import FaultPlan, FaultSpec

        plan = FaultPlan([FaultSpec(op="launch", at=300, kind="fatal")])
        study = self._study(store, self._runner(plan))

        report = study.report
        assert len(report.failed) == 1
        failed = report.failed[0]
        assert failed.attempts == 1  # fatal: no retry spent
        assert failed.error_kind == "fatal"
        assert "InvalidLaunchError" in failed.error
        # The rest of the table still renders, with the cell marked.
        out = study.render()
        assert "—" in out and failed.key in out
        assert np.isnan(study.mean_deviation).sum() == 1

    def test_oom_fault_is_fatal(self, store):
        from repro.resilience import FaultPlan, FaultSpec

        plan = FaultPlan([FaultSpec(op="malloc", at=3, kind="oom")])
        study = self._study(store, self._runner(plan))
        assert len(study.report.failed) == 1
        assert study.report.failed[0].error_kind == "fatal"

    def test_resume_after_kill_bit_identical(self, store, tmp_path):
        from repro.resilience import FaultPlan, FaultSpec

        clean = self._study(store, self._runner())

        # Simulated Ctrl-C partway through the study: the "interrupt"
        # fault raises KeyboardInterrupt on the Nth launch.
        plan = FaultPlan([FaultSpec(op="launch", at=1200, kind="interrupt")])
        killed = self._study(
            store, self._runner(plan, checkpoint_dir=tmp_path)
        )
        assert killed.report.interrupted
        done_before = len(killed.report.completed)
        assert 0 < done_before < len(killed.report.outcomes)

        resumed = self._study(
            store, self._runner(checkpoint_dir=tmp_path, resume=True)
        )
        restored = [o for o in resumed.report.completed if o.from_checkpoint]
        assert len(restored) == done_before  # nothing recomputed
        np.testing.assert_array_equal(clean.mean_deviation,
                                      resumed.mean_deviation)
        assert clean.render() == resumed.render()

    def test_fault_parity_across_backends(self, store, tmp_store_path):
        """Launch-indexed faults fire identically on both backends.

        The driver issues the identical kernel pipeline on gpusim and
        vectorized, so a launch-indexed fault plan must fire at the same
        cumulative launch index on each.
        """
        from repro.resilience import FaultPlan, FaultSpec

        fired = {}
        for backend in ("gpusim", "vectorized"):
            plan = FaultPlan([FaultSpec(op="launch", at=500, kind="fatal")])
            study = self._study(
                BestKnownStore(tmp_store_path),
                self._runner(plan, backend=backend),
            )
            assert len(study.report.failed) == 1
            fired[backend] = (plan.fired, study.report.failed[0].key)
        assert fired["gpusim"] == fired["vectorized"]


class TestSolverInputFailures:
    def test_solver_rejects_bad_config_before_any_work(self, paper_cdd):
        from repro.core.solver import CDDSolver

        with pytest.raises(ValueError):
            CDDSolver(paper_cdd).solve("parallel_sa", iterations=-5)

    def test_nan_instance_rejected_at_construction(self):
        from repro.problems.cdd import CDDInstance

        with pytest.raises(ValueError):
            CDDInstance([1.0, float("inf")], [1, 1], [1, 1], 2.0)

    def test_mismatched_sequence_rejected(self, paper_cdd):
        from repro.seqopt.cdd_linear import optimize_cdd_sequence

        # A non-permutation silently indexes wrong data; the schedule layer
        # must catch it at validation time.
        from repro.problems.validation import ScheduleError, validate_schedule

        sched = optimize_cdd_sequence(paper_cdd, np.array([0, 0, 1, 2, 3]))
        with pytest.raises(ScheduleError):
            validate_schedule(paper_cdd, sched)
