"""Non-integer instance data through the whole optimizer stack.

The benchmark instances are integral, but nothing in the theory requires
it; these tests drive fractional processing times, penalties and due dates
through the O(n) optimizers, the batched forms and the LP reference to
guard against integer-only assumptions and float-comparison traps (e.g.
the on-time job flipping to "tardy" under round-off).
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance
from repro.seqopt.batched import batched_cdd_objective, batched_ucddcp_objective
from repro.seqopt.cdd_linear import optimize_cdd_sequence
from repro.seqopt.lp_reference import lp_optimize_sequence
from repro.seqopt.ucddcp_linear import optimize_ucddcp_sequence

finite_pos = st.floats(0.1, 50.0, allow_nan=False, allow_infinity=False)
finite_nonneg = st.floats(0.0, 20.0, allow_nan=False, allow_infinity=False)


@st.composite
def float_cdd(draw, min_n=1, max_n=6):
    n = draw(st.integers(min_n, max_n))
    p = np.array([draw(finite_pos) for _ in range(n)])
    a = np.array([draw(finite_nonneg) for _ in range(n)])
    b = np.array([draw(finite_nonneg) for _ in range(n)])
    h = draw(st.floats(0.1, 1.5))
    return CDDInstance(p, a, b, float(h * p.sum()), name="float_cdd")


@st.composite
def float_ucddcp(draw, min_n=1, max_n=6):
    n = draw(st.integers(min_n, max_n))
    p = np.array([draw(finite_pos) for _ in range(n)])
    frac = np.array([draw(st.floats(0.1, 1.0)) for _ in range(n)])
    m = np.maximum(p * frac, 1e-3)
    a = np.array([draw(finite_nonneg) for _ in range(n)])
    b = np.array([draw(finite_nonneg) for _ in range(n)])
    g = np.array([draw(finite_nonneg) for _ in range(n)])
    slack = draw(st.floats(0.0, 30.0))
    return UCDDCPInstance(p, m, a, b, g, float(p.sum() + slack),
                          name="float_ucddcp")


class TestFloatCDD:
    @given(inst=float_cdd())
    def test_matches_lp(self, inst):
        seq = np.arange(inst.n)
        ours = optimize_cdd_sequence(inst, seq)
        lp = lp_optimize_sequence(inst, seq)
        assert ours.objective == pytest.approx(lp.objective, abs=1e-5,
                                               rel=1e-6)

    @given(inst=float_cdd(min_n=2))
    def test_batched_matches_scalar(self, inst):
        rng = np.random.default_rng(0)
        seqs = np.argsort(rng.random((8, inst.n)), axis=1)
        batched = batched_cdd_objective(inst, seqs)
        scalar = [optimize_cdd_sequence(inst, s).objective for s in seqs]
        np.testing.assert_allclose(batched, scalar, rtol=1e-12, atol=1e-9)

    @given(inst=float_cdd(min_n=2))
    def test_anchored_job_not_misclassified(self, inst):
        # The on-time job must carry zero penalty even under float anchors.
        s = optimize_cdd_sequence(inst, np.arange(inst.n))
        r = s.meta["due_date_position"]
        if r >= 1:
            e = max(0.0, inst.due_date - s.completion[r - 1])
            t = max(0.0, s.completion[r - 1] - inst.due_date)
            assert e + t < 1e-6 * max(1.0, inst.due_date)


class TestFloatUCDDCP:
    @given(inst=float_ucddcp())
    def test_matches_lp(self, inst):
        seq = np.arange(inst.n)
        ours = optimize_ucddcp_sequence(inst, seq)
        lp = lp_optimize_sequence(inst, seq)
        assert ours.objective == pytest.approx(lp.objective, abs=1e-5,
                                               rel=1e-6)

    @given(inst=float_ucddcp(min_n=2))
    def test_batched_matches_scalar(self, inst):
        rng = np.random.default_rng(1)
        seqs = np.argsort(rng.random((8, inst.n)), axis=1)
        batched = batched_ucddcp_objective(inst, seqs)
        scalar = [optimize_ucddcp_sequence(inst, s).objective for s in seqs]
        np.testing.assert_allclose(batched, scalar, rtol=1e-12, atol=1e-9)

    @given(inst=float_ucddcp(min_n=2))
    def test_compression_bounds_respected(self, inst):
        s = optimize_ucddcp_sequence(inst, np.arange(inst.n))
        ub = inst.max_reduction[s.sequence]
        assert np.all(s.reduction >= -1e-12)
        assert np.all(s.reduction <= ub + 1e-9)
