"""Text Gantt rendering."""

import numpy as np
import pytest

from repro.problems.gantt import render_gantt, render_schedule
from repro.seqopt.cdd_linear import optimize_cdd_sequence
from repro.seqopt.ucddcp_linear import optimize_ucddcp_sequence


class TestRenderGantt:
    def test_paper_figure_shape(self, paper_cdd):
        # Figure 3: jobs at C = (11, 16, 18, 22, 26), d = 16.
        out = render_gantt(
            np.array([11.0, 16, 18, 22, 26]),
            np.array([6.0, 5, 2, 4, 4]),
            16.0,
            width=60,
        )
        lines = out.splitlines()
        assert len(lines) == 2
        assert "|" in lines[0]
        # Jobs 1 and 2 appear before the marker, 4 and 5 after.
        marker = lines[0].index("|")
        assert "1" in lines[0][:marker]
        assert "5" in lines[0][marker:]

    def test_marker_at_due_date_fraction(self):
        out = render_gantt(np.array([10.0]), np.array([10.0]), 5.0, width=41)
        assert out.splitlines()[0].index("|") == 20  # halfway

    def test_custom_labels(self):
        out = render_gantt(
            np.array([2.0, 4.0]), np.array([2.0, 2.0]), 3.0,
            labels=["A", "B"], width=40,
        )
        assert "A" in out and "B" in out

    def test_label_count_checked(self):
        with pytest.raises(ValueError, match="label"):
            render_gantt(np.array([2.0]), np.array([2.0]), 1.0, labels=[])

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            render_gantt(np.array([1.0, 2.0]), np.array([1.0]), 1.0)

    def test_every_job_visible(self, rng):
        n = 8
        p = rng.integers(1, 5, n).astype(float)
        c = np.cumsum(p)
        out = render_gantt(c, p, float(c[-1] / 2), width=100)
        row = out.splitlines()[0]
        for k in range(n):
            assert str((k + 1) % 10) in row


class TestRenderSchedule:
    def test_cdd_schedule(self, paper_cdd):
        sched = optimize_cdd_sequence(paper_cdd, np.arange(5))
        out = render_schedule(paper_cdd, sched)
        assert "objective 81" in out
        assert "1 early, 1 on time, 3 tardy" in out

    def test_ucddcp_uses_effective_processing(self, paper_ucddcp):
        sched = optimize_ucddcp_sequence(paper_ucddcp, np.arange(5))
        out = render_schedule(paper_ucddcp, sched)
        assert "objective 77" in out
        # Compressed jobs shrink: the rendered row ends before the
        # uncompressed end time would.
        assert "d = 22" in out


class TestGanttEdgeCases:
    def test_zero_due_date(self):
        out = render_gantt(np.array([3.0]), np.array([3.0]), 0.0, width=30)
        assert out.splitlines()[0][0] == "|"

    def test_many_jobs_cycle_labels(self, rng):
        n = 23
        p = np.ones(n)
        c = np.cumsum(p)
        out = render_gantt(c, p, 10.0, width=120)
        # labels cycle modulo 10: job 11 renders as '1' again
        assert "0" in out  # job 10 -> label '0'
