"""Device runtime: launches, timing model, streams, profiler, reduction."""

import numpy as np
import pytest

from repro.gpusim.device import GEFORCE_GT_560M, TESLA_K20, Device
from repro.gpusim.errors import CudaError, InvalidHandleError
from repro.gpusim.kernel import KernelCost, kernel
from repro.gpusim.launch import linear_config
from repro.gpusim.profiler import Profiler
from repro.gpusim.reduction import atomic_min
from repro.gpusim.stream import Stream


@kernel("scale", registers=16, cost=lambda ctx, buf, f: KernelCost(8.0, 16.0))
def scale_kernel(ctx, buf, f):
    """Multiply each element by f."""
    buf.array[:] *= f


@kernel(
    "heavy", registers=32,
    cost=lambda ctx, buf: KernelCost(1_000_000.0, 8.0),
)
def heavy_kernel(ctx, buf):
    """No-op with a large modeled compute cost."""


class TestDeviceBasics:
    def test_memcpy_round_trip(self):
        dev = Device(seed=0)
        buf = dev.malloc(32, np.float64, "x")
        data = np.arange(32.0)
        dev.memcpy_htod(buf, data)
        out = dev.memcpy_dtoh(buf)
        assert np.array_equal(out, data)

    def test_memcpy_is_a_copy_both_ways(self):
        dev = Device(seed=0)
        buf = dev.malloc(4, np.float64)
        src = np.ones(4)
        dev.memcpy_htod(buf, src)
        src[0] = 99.0
        assert buf.array[0] == 1.0  # host mutation does not leak in
        out = dev.memcpy_dtoh(buf)
        out[1] = 77.0
        assert buf.array[1] == 1.0  # host mutation does not leak back

    def test_memcpy_shape_check(self):
        dev = Device(seed=0)
        buf = dev.malloc(4)
        with pytest.raises(ValueError, match="shape"):
            dev.memcpy_htod(buf, np.zeros(5))

    def test_foreign_buffer_rejected(self):
        dev1, dev2 = Device(seed=0), Device(seed=0)
        buf = dev1.malloc(4)
        with pytest.raises(InvalidHandleError):
            dev2.memcpy_dtoh(buf)

    def test_kernel_executes(self):
        dev = Device(seed=0)
        buf = dev.malloc(64)
        dev.memcpy_htod(buf, np.ones(64))
        dev.launch(scale_kernel, linear_config(64, 32), buf, 3.0)
        assert np.all(dev.memcpy_dtoh(buf) == 3.0)
        assert dev.launch_count == 1

    def test_launch_validates_config(self):
        dev = Device(seed=0)
        buf = dev.malloc(8)
        from repro.gpusim.launch import Dim3, LaunchConfig

        bad = LaunchConfig(grid=Dim3(1), block=Dim3(2048))
        with pytest.raises(Exception):
            dev.launch(scale_kernel, bad, buf, 1.0)

    def test_shared_memory_limit_enforced(self):
        dev = Device(seed=0)
        buf = dev.malloc(8)

        @kernel("bigshared", registers=16,
                cost=lambda ctx, b: KernelCost(1.0, 1.0),
                shared_mem=64 * 1024)
        def bigshared(ctx, b):
            pass

        with pytest.raises(CudaError, match="shared memory"):
            dev.launch(bigshared, linear_config(32, 32), buf)


class TestTimingModel:
    def test_kernel_time_scales_with_cycles(self):
        dev = Device(seed=0)
        buf = dev.malloc(8)
        cfg = linear_config(32, 32)

        t0 = dev.device_busy_until
        dev.launch(scale_kernel, cfg, buf, 1.0)
        light = dev.device_busy_until - t0
        t1 = dev.device_busy_until
        dev.launch(heavy_kernel, cfg, buf)
        heavy = dev.device_busy_until - t1
        assert heavy > light * 10

    def test_waves_make_time_stepwise(self):
        # More blocks than the SMs co-run => extra waves => more time.
        dev = Device(seed=0)

        def run(threads):
            d = Device(seed=0)
            b = d.malloc(threads)
            d.launch(heavy_kernel, linear_config(threads, 192), b)
            d.synchronize()
            return d.profiler.kernel_time()

        small = run(4 * 192)  # 4 blocks, one per SM
        # 32 blocks of 192 threads: register-limited to 4 blocks/SM over 4
        # SMs = 16 co-resident; 32 blocks => 2 waves.
        large = run(32 * 192)
        assert large > small

    def test_async_launch_then_synchronize(self):
        dev = Device(seed=0)
        buf = dev.malloc(8)
        host_before = dev.host_time
        dev.launch(heavy_kernel, linear_config(32, 32), buf)
        # Kernel launch is asynchronous: the host clock has not advanced.
        assert dev.host_time == host_before
        assert dev.device_busy_until > host_before
        dev.synchronize()
        assert dev.host_time >= dev.device_busy_until

    def test_memcpy_charges_transfer_time(self):
        dev = Device(seed=0)
        buf = dev.malloc(1_000_000)  # 8 MB
        before = dev.host_time
        dev.memcpy_htod(buf, np.zeros(1_000_000))
        elapsed = dev.host_time - before
        expected = 8e6 / dev.spec.pcie_bandwidth_bytes_per_s
        assert elapsed >= expected

    def test_dtoh_waits_for_kernels(self):
        dev = Device(seed=0)
        buf = dev.malloc(8)
        dev.launch(heavy_kernel, linear_config(32, 32), buf)
        busy = dev.device_busy_until
        dev.memcpy_dtoh(buf)
        assert dev.host_time >= busy

    def test_reset_clocks(self):
        dev = Device(seed=0)
        buf = dev.malloc(8)
        dev.launch(scale_kernel, linear_config(32, 32), buf, 2.0)
        dev.synchronize()
        dev.reset_clocks()
        assert dev.host_time == 0.0
        assert dev.profiler.events == []

    def test_faster_device_is_faster(self):
        def kernel_time(spec):
            d = Device(spec=spec, seed=0)
            b = d.malloc(8)
            d.launch(heavy_kernel, linear_config(26 * 192, 192), b)
            d.synchronize()
            return d.profiler.kernel_time()

        assert kernel_time(TESLA_K20) < kernel_time(GEFORCE_GT_560M)


class TestProfiler:
    def test_records_kinds(self):
        dev = Device(seed=0)
        buf = dev.malloc(8)
        dev.memcpy_htod(buf, np.zeros(8))
        dev.launch(scale_kernel, linear_config(32, 32), buf, 1.0)
        dev.synchronize()
        kinds = {e.kind for e in dev.profiler.events}
        assert {"memcpy_htod", "kernel", "sync"} <= kinds

    def test_summary_contains_kernel_name(self):
        dev = Device(seed=0)
        buf = dev.malloc(8)
        dev.launch(scale_kernel, linear_config(32, 32), buf, 1.0)
        assert "scale" in dev.profiler.summary()

    def test_disabled_profiler_records_nothing(self):
        prof = Profiler(enabled=False)
        prof.record("x", "kernel", 0.0, 1.0)
        assert prof.events == []

    def test_kernel_and_memcpy_times_split(self):
        dev = Device(seed=0)
        buf = dev.malloc(1024)
        dev.memcpy_htod(buf, np.zeros(1024))
        dev.launch(scale_kernel, linear_config(32, 32), buf, 1.0)
        dev.synchronize()
        prof = dev.profiler
        assert prof.kernel_time() > 0
        assert prof.memcpy_time() > 0
        assert prof.total_time() >= prof.kernel_time() + prof.memcpy_time()

    def test_event_end(self):
        prof = Profiler()
        prof.record("k", "kernel", 2.0, 3.0)
        assert prof.events[0].end == 5.0


class TestStream:
    def test_enqueue_serializes(self):
        s = Stream()
        a = s.enqueue(0.0, 1.0)
        b = s.enqueue(0.0, 2.0)
        assert a == (0.0, 1.0)
        assert b == (1.0, 3.0)

    def test_earliest_start_respected(self):
        s = Stream()
        start, end = s.enqueue(5.0, 1.0)
        assert start == 5.0 and end == 6.0

    def test_wait(self):
        s = Stream()
        s.enqueue(0.0, 4.0)
        assert s.wait(1.0) == 4.0
        assert s.wait(9.0) == 9.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Stream().enqueue(0.0, -1.0)


class TestAtomicMin:
    def test_value_and_index(self):
        res = atomic_min(np.array([5.0, 1.0, 3.0]))
        assert res.value == 1.0 and res.index == 1
        assert res.contended_ops == 3

    def test_tie_resolves_to_lowest_index(self):
        res = atomic_min(np.array([2.0, 1.0, 1.0]))
        assert res.index == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            atomic_min(np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            atomic_min(np.zeros((2, 2)))

    def test_matches_numpy_min(self, rng):
        v = rng.normal(size=1000)
        res = atomic_min(v)
        assert res.value == v.min()


class TestEvents:
    def test_elapsed_measures_kernel_section(self):
        from repro.gpusim.events import elapsed_time, record_event

        dev = Device(seed=0)
        buf = dev.malloc(8)
        start = record_event(dev)
        dev.launch(heavy_kernel, linear_config(32, 32), buf)
        end = record_event(dev)
        section = elapsed_time(start, end)
        dev.synchronize()
        assert section == pytest.approx(dev.profiler.kernel_time())

    def test_event_synchronize_advances_host(self):
        from repro.gpusim.events import record_event

        dev = Device(seed=0)
        buf = dev.malloc(8)
        dev.launch(heavy_kernel, linear_config(32, 32), buf)
        ev = record_event(dev)
        host = ev.synchronize()
        assert host >= ev.timestamp

    def test_unrecorded_event_errors(self):
        from repro.gpusim.events import Event, elapsed_time, record_event

        dev = Device(seed=0)
        ev = Event(device=dev)
        assert not ev.recorded
        with pytest.raises(RuntimeError):
            ev.synchronize()
        with pytest.raises(RuntimeError):
            elapsed_time(ev, record_event(dev))

    def test_cross_device_events_rejected(self):
        from repro.gpusim.events import elapsed_time, record_event

        a, b = Device(seed=0), Device(seed=0)
        with pytest.raises(ValueError):
            elapsed_time(record_event(a), record_event(b))

    def test_zero_elapsed_without_work(self):
        from repro.gpusim.events import elapsed_time, record_event

        dev = Device(seed=0)
        assert elapsed_time(record_event(dev), record_event(dev)) == 0.0


class TestFormatting:
    def test_fmt_s_ranges(self):
        from repro.gpusim.profiler import _fmt_s

        assert _fmt_s(2.5) == "2.500s"
        assert _fmt_s(0.0025) == "2.500ms"
        assert _fmt_s(2.5e-6) == "2.500us"
        assert _fmt_s(2.5e-9) == "2.5ns"

    def test_summary_with_no_events(self):
        from repro.gpusim.profiler import Profiler

        out = Profiler().summary()
        assert "Total modeled device time" in out
