"""Launch geometry: dim3, config validation, occupancy."""

import pytest

from repro.gpusim.device import GEFORCE_GT_560M, TESLA_K20
from repro.gpusim.errors import InvalidLaunchError
from repro.gpusim.launch import (
    Dim3,
    LaunchConfig,
    linear_config,
    occupancy,
)


class TestDim3:
    def test_defaults(self):
        d = Dim3()
        assert d.as_tuple() == (1, 1, 1)
        assert d.count == 1

    def test_count(self):
        assert Dim3(4, 3, 2).count == 24

    def test_rejects_zero(self):
        with pytest.raises(InvalidLaunchError):
            Dim3(0)

    def test_rejects_negative(self):
        with pytest.raises(InvalidLaunchError):
            Dim3(1, -2)

    def test_rejects_non_integer(self):
        with pytest.raises(InvalidLaunchError):
            Dim3(1.5)  # type: ignore[arg-type]


class TestLaunchConfig:
    def test_paper_configuration(self):
        # G = (ceil(N/N_B), 1, 1), B = (192, 1, 1), N = 768.
        cfg = linear_config(768, 192)
        assert cfg.grid.as_tuple() == (4, 1, 1)
        assert cfg.block.as_tuple() == (192, 1, 1)
        assert cfg.total_threads == 768
        cfg.validate(GEFORCE_GT_560M)

    def test_linear_config_rounds_up(self):
        cfg = linear_config(100, 32)
        assert cfg.num_blocks == 4
        assert cfg.total_threads == 128

    def test_rejects_oversized_block(self):
        cfg = LaunchConfig(grid=Dim3(1), block=Dim3(2048))
        with pytest.raises(InvalidLaunchError, match="exceeds device limit"):
            cfg.validate(GEFORCE_GT_560M)

    def test_rejects_block_axis_limit(self):
        cfg = LaunchConfig(grid=Dim3(1), block=Dim3(1, 1, 65))
        with pytest.raises(InvalidLaunchError, match="per-axis"):
            cfg.validate(GEFORCE_GT_560M)

    def test_rejects_grid_axis_limit(self):
        cfg = LaunchConfig(grid=Dim3(70000), block=Dim3(32))
        with pytest.raises(InvalidLaunchError, match="per-axis"):
            cfg.validate(GEFORCE_GT_560M)

    def test_rejects_excess_shared_memory(self):
        cfg = LaunchConfig(grid=Dim3(1), block=Dim3(32),
                           shared_mem_bytes=64 * 1024)
        with pytest.raises(InvalidLaunchError, match="shared memory"):
            cfg.validate(GEFORCE_GT_560M)

    def test_linear_config_rejects_bad_args(self):
        with pytest.raises(InvalidLaunchError):
            linear_config(0, 32)
        with pytest.raises(InvalidLaunchError):
            linear_config(32, 0)


class TestOccupancy:
    def test_paper_block_192_fully_resident(self):
        # 192-thread blocks, 40 regs: 1536/192 = 8 thread-limited blocks,
        # register-limited to 32768/(40*192) = 4 -> 4 blocks/SM.
        occ = occupancy(GEFORCE_GT_560M, 192, 40, 0)
        assert occ.blocks_per_sm == 4
        assert occ.limiter == "registers"
        assert occ.occupancy == pytest.approx(0.5)

    def test_thread_slot_limit(self):
        occ = occupancy(GEFORCE_GT_560M, 1024, 0, 0)
        assert occ.blocks_per_sm == 1
        assert occ.limiter == "thread slots"

    def test_shared_memory_limit(self):
        occ = occupancy(GEFORCE_GT_560M, 64, 0, 20 * 1024)
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "shared memory"

    def test_block_slot_limit(self):
        occ = occupancy(GEFORCE_GT_560M, 32, 0, 0)
        assert occ.blocks_per_sm == GEFORCE_GT_560M.max_blocks_per_sm
        assert occ.limiter == "block slots"

    def test_impossible_block_raises(self):
        with pytest.raises(InvalidLaunchError, match="exceeds SM resources"):
            occupancy(GEFORCE_GT_560M, 1024, 64, 0)  # registers blow up

    def test_occupancy_capped_at_one(self):
        occ = occupancy(TESLA_K20, 256, 16, 0)
        assert occ.occupancy <= 1.0

    def test_describe_mentions_limiter(self):
        occ = occupancy(GEFORCE_GT_560M, 192, 40, 0)
        assert "registers" in occ.describe()

    def test_rejects_nonpositive_threads(self):
        with pytest.raises(InvalidLaunchError):
            occupancy(GEFORCE_GT_560M, 0, 10, 0)

    def test_more_registers_reduce_occupancy(self):
        # The paper: "increasing the block size offers less registers which
        # a thread can use" -- monotonicity of the resource model.
        lo = occupancy(GEFORCE_GT_560M, 192, 20, 0)
        hi = occupancy(GEFORCE_GT_560M, 192, 60, 0)
        assert hi.blocks_per_sm <= lo.blocks_per_sm
