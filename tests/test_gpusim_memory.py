"""Memory spaces: global allocator, constant memory, transfer costs."""

import numpy as np
import pytest

from repro.gpusim.errors import (
    ConstantMemoryError,
    DeviceAllocationError,
    InvalidHandleError,
)
from repro.gpusim.memory import (
    ConstantMemory,
    GlobalMemory,
    transfer_time,
)


class TestGlobalMemory:
    def test_alloc_tracks_usage(self):
        mem = GlobalMemory(1024)
        buf = mem.alloc(16, np.float64)  # 128 B
        assert mem.used_bytes == 128
        assert mem.free_bytes == 896
        assert buf.nbytes == 128

    def test_alloc_zero_initialized(self):
        mem = GlobalMemory(1024)
        buf = mem.alloc((4, 4), np.float64)
        assert np.all(buf.array == 0.0)

    def test_oom(self):
        mem = GlobalMemory(100)
        with pytest.raises(DeviceAllocationError, match="cannot allocate"):
            mem.alloc(100, np.float64)

    def test_free_returns_capacity(self):
        mem = GlobalMemory(1024)
        buf = mem.alloc(64, np.float64)
        buf.free()
        assert mem.used_bytes == 0
        # Freed space is reusable.
        mem.alloc(128, np.float64)

    def test_double_free_raises(self):
        mem = GlobalMemory(1024)
        buf = mem.alloc(8, np.float64)
        buf.free()
        with pytest.raises(InvalidHandleError):
            buf.free()

    def test_use_after_free_detectable(self):
        mem = GlobalMemory(1024)
        buf = mem.alloc(8, np.float64)
        buf.free()
        with pytest.raises(InvalidHandleError, match="freed"):
            buf.check_alive()

    def test_owns(self):
        mem1, mem2 = GlobalMemory(1024), GlobalMemory(1024)
        buf = mem1.alloc(8)
        assert mem1.owns(buf)
        assert not mem2.owns(buf)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            GlobalMemory(0)

    def test_dtype_and_shape_exposed(self):
        mem = GlobalMemory(4096)
        buf = mem.alloc((3, 5), np.int32, label="seqs")
        assert buf.shape == (3, 5)
        assert buf.dtype == np.int32
        assert buf.label == "seqs"


class TestConstantMemory:
    def test_upload_and_read(self):
        cm = ConstantMemory()
        cm.upload("due_date", np.float64(16.0))
        assert float(cm["due_date"]) == 16.0
        assert "due_date" in cm

    def test_values_readonly(self):
        cm = ConstantMemory()
        cm.upload("v", np.arange(4))
        with pytest.raises(ValueError):
            cm["v"][0] = 9

    def test_upload_copy_semantics(self):
        cm = ConstantMemory()
        src = np.arange(4)
        cm.upload("v", src)
        src[0] = 99
        assert cm["v"][0] == 0

    def test_capacity_enforced(self):
        cm = ConstantMemory(capacity_bytes=64)
        with pytest.raises(ConstantMemoryError, match="overflow"):
            cm.upload("big", np.zeros(64))

    def test_replacement_frees_old_budget(self):
        cm = ConstantMemory(capacity_bytes=128)
        cm.upload("v", np.zeros(16))  # 128 B
        cm.upload("v", np.zeros(16))  # replacing is fine
        assert cm.used_bytes == 128

    def test_unknown_symbol(self):
        cm = ConstantMemory()
        with pytest.raises(ConstantMemoryError, match="unknown"):
            cm["nope"]

    def test_iteration(self):
        cm = ConstantMemory()
        cm.upload("a", 1)
        cm.upload("b", 2)
        assert sorted(cm) == ["a", "b"]


class TestTransferTime:
    def test_latency_plus_bandwidth(self):
        t = transfer_time(1000, bandwidth_bytes_per_s=1000.0, latency_s=0.5)
        assert t == pytest.approx(1.5)

    def test_zero_bytes_costs_latency(self):
        assert transfer_time(0, 1e9, 1e-5) == pytest.approx(1e-5)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            transfer_time(-1, 1e9, 0.0)

    def test_monotone_in_size(self):
        small = transfer_time(10, 1e9, 1e-5)
        large = transfer_time(10_000_000, 1e9, 1e-5)
        assert large > small
