"""Multi-dimensional launch geometry and thread-context indexing."""

import numpy as np

from repro.gpusim.device import GEFORCE_GT_560M, Device
from repro.gpusim.kernel import KernelCost, kernel
from repro.gpusim.launch import Dim3, LaunchConfig


@kernel("ident", registers=8, cost=lambda ctx, out: KernelCost(2.0, 8.0))
def ident_kernel(ctx, out):
    """Write each thread's global id into out."""
    out.array[: ctx.total_threads] = ctx.thread_ids


class TestMultiDimLaunch:
    def test_2d_grid_total_threads(self):
        cfg = LaunchConfig(grid=Dim3(4, 2), block=Dim3(16, 4))
        assert cfg.num_blocks == 8
        assert cfg.threads_per_block == 64
        assert cfg.total_threads == 512
        cfg.validate(GEFORCE_GT_560M)

    def test_3d_block_validated(self):
        cfg = LaunchConfig(grid=Dim3(1), block=Dim3(8, 8, 8))
        cfg.validate(GEFORCE_GT_560M)
        assert cfg.threads_per_block == 512

    def test_linear_thread_ids_cover_launch(self):
        dev = Device(seed=0)
        cfg = LaunchConfig(grid=Dim3(3, 2), block=Dim3(8, 2))
        out = dev.malloc(cfg.total_threads)
        dev.launch(ident_kernel, cfg, out)
        got = dev.memcpy_dtoh(out)
        assert np.array_equal(got, np.arange(cfg.total_threads))

    def test_block_and_lane_indexing(self):
        dev = Device(seed=0)
        cfg = LaunchConfig(grid=Dim3(4), block=Dim3(48))

        @kernel("idx", registers=8, cost=lambda ctx, b, l: KernelCost(2.0, 8.0))
        def idx_kernel(ctx, blocks, lanes):
            """Expose block ids and lane ids."""
            blocks.array[:] = ctx.block_ids
            lanes.array[:] = ctx.lane_ids

        blocks = dev.malloc(cfg.total_threads)
        lanes = dev.malloc(cfg.total_threads)
        dev.launch(idx_kernel, cfg, blocks, lanes)
        b = dev.memcpy_dtoh(blocks)
        l = dev.memcpy_dtoh(lanes)
        assert b[0] == 0 and b[-1] == 3
        assert np.all(np.bincount(b.astype(int)) == 48)
        # Lanes wrap at the warp size within each block.
        assert l[:32].tolist() == list(range(32))
        assert l[32] == 0  # second warp restarts
        assert l.max() == 31

    def test_thread_in_block(self):
        dev = Device(seed=0)
        cfg = LaunchConfig(grid=Dim3(2), block=Dim3(10))

        @kernel("tib", registers=8, cost=lambda ctx, o: KernelCost(2.0, 8.0))
        def tib_kernel(ctx, out):
            """Expose block-local thread index."""
            out.array[:] = ctx.thread_in_block

        out = dev.malloc(20)
        dev.launch(tib_kernel, cfg, out)
        got = dev.memcpy_dtoh(out)
        assert got.tolist() == list(range(10)) + list(range(10))
