"""The counter-based device RNG (cuRAND stand-in)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpusim.rng import DeviceRNG, splitmix64


class TestSplitMix:
    def test_deterministic(self):
        x = np.arange(100, dtype=np.uint64)
        assert np.array_equal(splitmix64(x), splitmix64(x))

    def test_avalanche(self):
        # Flipping one input bit flips ~half the output bits on average.
        x = np.arange(1000, dtype=np.uint64)
        y = x ^ np.uint64(1)
        diff = splitmix64(x) ^ splitmix64(y)
        popcount = np.unpackbits(diff.view(np.uint8)).sum() / 1000
        assert 24 < popcount < 40

    def test_no_trivial_fixed_point_at_zero(self):
        assert int(splitmix64(np.uint64(0))) != 0


class TestDeviceRNG:
    def test_reproducible_across_instances(self):
        tids = np.arange(512)
        a = DeviceRNG(42)
        b = DeviceRNG(42)
        for _ in range(5):
            assert np.array_equal(a.uniform(tids), b.uniform(tids))

    def test_stream_independent_of_ensemble_size(self):
        # Thread 7's stream is identical whether 8 or 800 threads run.
        small, large = DeviceRNG(1), DeviceRNG(1)
        s = small.uniform(np.arange(8))
        l = large.uniform(np.arange(800))
        assert s[7] == l[7]

    def test_different_seeds_differ(self):
        tids = np.arange(64)
        assert not np.array_equal(
            DeviceRNG(1).uniform(tids), DeviceRNG(2).uniform(tids)
        )

    def test_counter_advances(self):
        rng = DeviceRNG(0)
        tids = np.arange(16)
        first = rng.uniform(tids)
        second = rng.uniform(tids)
        assert rng.counter == 2
        assert not np.array_equal(first, second)

    def test_uniform_range(self):
        rng = DeviceRNG(3)
        u = rng.uniform(np.arange(10_000))
        assert np.all(u >= 0.0) and np.all(u < 1.0)

    def test_uniform_statistics(self):
        rng = DeviceRNG(5)
        u = np.concatenate([rng.uniform(np.arange(10_000)) for _ in range(5)])
        assert abs(u.mean() - 0.5) < 0.01
        assert abs(u.std() - np.sqrt(1 / 12)) < 0.01

    def test_cross_thread_decorrelation(self):
        rng = DeviceRNG(7)
        u = rng.uniform(np.arange(20_000))
        corr = np.corrcoef(u[:-1], u[1:])[0, 1]
        assert abs(corr) < 0.03

    @given(low=st.integers(-50, 50), span=st.integers(1, 100))
    def test_randint_bounds(self, low, span):
        rng = DeviceRNG(11)
        v = rng.randint(np.arange(500), low, low + span)
        assert np.all(v >= low) and np.all(v < low + span)

    def test_randint_rejects_empty_range(self):
        with pytest.raises(ValueError, match="empty range"):
            DeviceRNG(0).randint(np.arange(4), 5, 5)

    def test_randint_covers_range(self):
        rng = DeviceRNG(13)
        vals = np.concatenate(
            [rng.randint(np.arange(1000), 0, 7) for _ in range(5)]
        )
        assert set(np.unique(vals)) == set(range(7))

    def test_randint_roughly_uniform(self):
        rng = DeviceRNG(17)
        vals = np.concatenate(
            [rng.randint(np.arange(5000), 0, 10) for _ in range(4)]
        )
        counts = np.bincount(vals, minlength=10)
        assert counts.min() > 0.85 * counts.mean()

    def test_uniform_matrix_shape(self):
        rng = DeviceRNG(19)
        m = rng.uniform_matrix(np.arange(32), draws=5)
        assert m.shape == (32, 5)
        # Columns are distinct draw rounds.
        assert not np.array_equal(m[:, 0], m[:, 1])

    def test_spawn_independent(self):
        parent = DeviceRNG(23)
        child = parent.spawn(1)
        tids = np.arange(256)
        assert not np.array_equal(parent.uniform(tids), child.uniform(tids))

    def test_spawn_deterministic(self):
        a = DeviceRNG(23).spawn(4)
        b = DeviceRNG(23).spawn(4)
        tids = np.arange(16)
        assert np.array_equal(a.uniform(tids), b.uniform(tids))

    def test_seed_property(self):
        assert DeviceRNG(99).seed == 99
