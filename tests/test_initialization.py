"""Initial-population policies."""

import numpy as np
import pytest
from hypothesis import given

from repro.initialization import (
    initial_population,
    random_population,
    vshape_population,
)
from repro.seqopt.batched import batched_cdd_objective
from tests.conftest import cdd_instances, ucddcp_instances


class TestRandomPopulation:
    def test_valid_permutations(self, rng):
        pop = random_population(12, 30, rng)
        for row in pop:
            assert np.array_equal(np.sort(row), np.arange(12))

    def test_distinct_rows(self, rng):
        pop = random_population(20, 30, rng)
        assert np.unique(pop, axis=0).shape[0] > 25


class TestVShapePopulation:
    @given(inst=cdd_instances(min_n=2, max_n=8))
    def test_valid_permutations(self, inst):
        rng = np.random.default_rng(1)
        pop = vshape_population(inst, 16, rng)
        for row in pop:
            assert np.array_equal(np.sort(row), np.arange(inst.n))

    @given(inst=ucddcp_instances(min_n=2, max_n=8))
    def test_works_for_ucddcp(self, inst):
        rng = np.random.default_rng(2)
        pop = vshape_population(inst, 8, rng)
        assert pop.shape == (8, inst.n)

    def test_vshape_structure(self):
        from repro.instances.biskup import biskup_instance

        inst = biskup_instance(30, 0.4, 1)
        rng = np.random.default_rng(3)
        pop = vshape_population(inst, 10, rng)
        p, a, b = inst.processing, inst.alpha, inst.beta
        for row in pop:
            # Find the early/tardy boundary: cumulative processing of the
            # early block stays below the sampled target <= d.
            ratios_a = a[row] / p[row]
            # The early prefix must be non-decreasing in alpha/p; locate the
            # longest such prefix and check the suffix ordering by p/beta.
            k = 1
            while k < inst.n and ratios_a[k] >= ratios_a[k - 1] - 1e-12:
                k += 1
            tail = row[k:]
            if tail.size > 1 and np.all(b[tail] > 0):
                ratios_b = p[tail] / b[tail]
                assert np.all(np.diff(ratios_b) >= -1e-12)

    def test_better_than_random_on_benchmark(self):
        from repro.instances.biskup import biskup_instance

        inst = biskup_instance(100, 0.4, 1)
        rng = np.random.default_rng(4)
        vs = batched_cdd_objective(inst, vshape_population(inst, 64, rng))
        rd = batched_cdd_objective(inst, random_population(100, 64, rng))
        assert vs.mean() < rd.mean() * 0.8

    def test_diverse(self):
        from repro.instances.biskup import biskup_instance

        inst = biskup_instance(40, 0.4, 1)
        rng = np.random.default_rng(5)
        pop = vshape_population(inst, 32, rng)
        assert np.unique(pop, axis=0).shape[0] > 16


class TestDispatch:
    def test_policies(self, paper_cdd, rng):
        a = initial_population(paper_cdd, 4, rng, "random")
        b = initial_population(paper_cdd, 4, rng, "vshape")
        assert a.shape == b.shape == (4, 5)
        with pytest.raises(ValueError, match="init"):
            initial_population(paper_cdd, 4, rng, "magic")

    def test_solver_integration(self, paper_cdd):
        from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
        from repro.core.sa import SerialSAConfig, sa_serial

        r1 = parallel_sa(
            paper_cdd,
            ParallelSAConfig(iterations=60, grid_size=1, block_size=16,
                             seed=1, init="vshape"),
        )
        r2 = sa_serial(
            paper_cdd, SerialSAConfig(iterations=60, seed=1, init="vshape")
        )
        assert r1.objective > 0 and r2.objective > 0

    def test_vshape_init_helps_at_scale(self):
        from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
        from repro.instances.biskup import biskup_instance

        inst = biskup_instance(100, 0.4, 1)
        base = dict(iterations=150, grid_size=2, block_size=32, seed=3)
        rd = parallel_sa(inst, ParallelSAConfig(**base))
        vs = parallel_sa(inst, ParallelSAConfig(init="vshape", **base))
        assert vs.objective < rd.objective
