"""Loader-side instance validation: malformed benchmark data must fail
fast with an error naming the instance, the field and the job index —
not surface as a NaN objective three layers downstream.
"""

import numpy as np
import pytest

from repro.instances.biskup import biskup_instance
from repro.instances.orlib import parse_sch, write_sch
from repro.instances.ucddcp_gen import ucddcp_instance
from repro.instances.validate import validate_job_fields


class TestValidateJobFields:
    def test_clean_data_passes(self):
        validate_job_fields(
            "x", np.array([1.0, 2.0]),
            alpha=np.array([0.0, 3.0]), beta=np.array([1.0, 1.0]),
            gamma=np.array([2.0, 2.0]), min_processing=np.array([1.0, 1.0]),
        )

    def test_zero_processing_rejected(self):
        with pytest.raises(ValueError, match=(
                r"instance 'bad': field 'processing' must be strictly "
                r"positive; job 1")):
            validate_job_fields("bad", np.array([3.0, 0.0]))

    def test_negative_processing_rejected(self):
        with pytest.raises(ValueError, match="strictly positive"):
            validate_job_fields("bad", np.array([-1.0, 2.0]))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match=(
                r"field 'beta' must be non-negative; job 0")):
            validate_job_fields("bad", np.array([1.0]),
                                beta=np.array([-2.0]))

    def test_nan_weight_rejected(self):
        with pytest.raises(ValueError, match=(
                r"field 'alpha' is not finite at job 1")):
            validate_job_fields("bad", np.array([1.0, 1.0]),
                                alpha=np.array([1.0, np.nan]))

    def test_infinite_processing_rejected(self):
        with pytest.raises(ValueError, match="not finite"):
            validate_job_fields("bad", np.array([np.inf]))

    def test_min_processing_above_processing_rejected(self):
        with pytest.raises(ValueError, match=(
                r"min_processing exceeds processing at job 1")):
            validate_job_fields(
                "bad", np.array([5.0, 3.0]),
                min_processing=np.array([2.0, 4.0]),
            )

    def test_zero_min_processing_rejected(self):
        with pytest.raises(ValueError, match=(
                r"field 'min_processing' must be strictly positive")):
            validate_job_fields("bad", np.array([5.0]),
                                min_processing=np.array([0.0]))


class TestSchFileValidation:
    def _file(self, rows):
        lines = [str(len(rows) and 1)]
        lines += [f"{p} {a} {b}" for p, a, b in rows]
        return "\n".join(lines) + "\n"

    def test_clean_file_parses(self):
        [inst] = parse_sch(self._file([(3, 1, 2), (4, 2, 1)]), h=0.4)
        assert inst.n == 2

    def test_zero_processing_names_instance_and_field(self):
        with pytest.raises(ValueError, match=(
                r"instance 'orlib_n2_k1_h0\.4': field 'processing'")):
            parse_sch(self._file([(3, 1, 2), (0, 2, 1)]), h=0.4)

    def test_negative_weight_names_field(self):
        with pytest.raises(ValueError, match="field 'alpha'"):
            parse_sch(self._file([(3, -1, 2), (4, 2, 1)]), h=0.4)

    def test_non_numeric_data_rejected(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_sch("1\n3 one 2\n4 2 1\n", h=0.4)

    def test_round_trip_still_validates(self):
        instances = parse_sch(self._file([(3, 1, 2), (4, 2, 1)]), h=0.4)
        reparsed = parse_sch(write_sch(instances), h=0.4)
        assert np.array_equal(reparsed[0].processing,
                              instances[0].processing)


class TestGeneratorsProduceValidData:
    # The generators draw from strictly-positive ranges; running them
    # through the validator pins that property against future edits.
    @pytest.mark.parametrize("n", [10, 50])
    def test_biskup(self, n):
        inst = biskup_instance(n, 0.4, 1)
        validate_job_fields(inst.name, inst.processing,
                            alpha=inst.alpha, beta=inst.beta)

    @pytest.mark.parametrize("n", [10, 50])
    def test_ucddcp(self, n):
        inst = ucddcp_instance(n, 1)
        validate_job_fields(
            inst.name, inst.processing, alpha=inst.alpha, beta=inst.beta,
            gamma=inst.gamma, min_processing=inst.min_processing,
        )
        assert np.all(inst.min_processing <= inst.processing)
