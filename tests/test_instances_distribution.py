"""Distributional sanity of the generated benchmark suites."""

import numpy as np

from repro.instances.biskup import biskup_benchmark_suite, biskup_instance
from repro.instances.ucddcp_gen import ucddcp_instance


class TestBiskupDistribution:
    def test_processing_uniform_1_20(self):
        # Pool a large sample and check coarse uniformity over {1..20}.
        p = np.concatenate([
            biskup_instance(1000, 0.4, k).processing for k in (1, 2, 3)
        ])
        counts = np.bincount(p.astype(int), minlength=21)[1:]
        assert counts.min() > 0.6 * counts.mean()
        assert counts.max() < 1.4 * counts.mean()

    def test_penalty_ranges_distinct(self):
        inst = biskup_instance(1000, 0.4, 1)
        # alpha caps at 10 and beta at 15; the tails must differ.
        assert inst.alpha.max() == 10
        assert inst.beta.max() == 15

    def test_mean_processing_near_theoretical(self):
        p = biskup_instance(1000, 0.4, 1).processing
        assert abs(p.mean() - 10.5) < 0.6  # E[U{1..20}] = 10.5

    def test_suite_order_does_not_change_instances(self):
        # Deterministic per (n, k): generating in suite order or directly
        # gives identical data.
        from_suite = {
            inst.name: inst
            for inst in biskup_benchmark_suite(
                sizes=(10, 20), h_factors=(0.4,), k_values=(1, 2)
            )
        }
        direct = biskup_instance(20, 0.4, 2)
        assert from_suite[direct.name] == direct


class TestUCDDCPDistribution:
    def test_due_date_factor_in_range(self):
        for k in range(1, 8):
            inst = ucddcp_instance(200, k)
            u = inst.due_date / inst.total_processing
            assert 1.0 <= u <= 1.21

    def test_compressibility_present(self):
        inst = ucddcp_instance(500, 1)
        # A meaningful share of jobs is compressible.
        assert (inst.max_reduction > 0).mean() > 0.5
