"""End-to-end integration tests across the whole stack."""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro import (
    CDDSolver,
    UCDDCPSolver,
    biskup_instance,
    ucddcp_instance,
)
from repro.bestknown.compute import compute_best_known
from repro.bestknown.store import BestKnownStore
from repro.problems.validation import validate_schedule
from repro.seqopt.lp_reference import lp_optimize_sequence


class TestFullPipelineCDD:
    @pytest.fixture(scope="class")
    def outcome(self):
        inst = biskup_instance(30, 0.6, 2)
        solver = CDDSolver(inst)
        result = solver.solve(
            "parallel_sa", iterations=400, grid_size=2, block_size=48,
            seed=123,
        )
        return inst, result

    def test_schedule_feasible_and_tight(self, outcome):
        inst, result = outcome
        validate_schedule(inst, result.schedule, require_no_idle=True)

    def test_best_sequence_lp_certified(self, outcome):
        # The completion times the library reports for the winning sequence
        # must be LP-optimal for that sequence.
        inst, result = outcome
        lp = lp_optimize_sequence(inst, result.best_sequence)
        assert result.objective == pytest.approx(lp.objective, abs=1e-6)

    def test_result_reproducible(self, outcome):
        inst, result = outcome
        again = CDDSolver(inst).solve(
            "parallel_sa", iterations=400, grid_size=2, block_size=48,
            seed=123,
        )
        assert again.objective == result.objective
        assert np.array_equal(again.best_sequence, result.best_sequence)

    def test_beats_weak_baseline(self, outcome):
        inst, result = outcome
        weak = CDDSolver(inst).solve("serial_sa", iterations=50, seed=1)
        assert result.objective <= weak.objective

    def test_deviation_vs_reference_is_sane(self, outcome, tmp_path):
        inst, result = outcome
        store = BestKnownStore(tmp_path / "bk.json")
        ref = compute_best_known(inst, store, restarts=2, iterations=3000,
                                 save=False)
        deviation = (result.objective - ref) / ref * 100
        assert deviation < 25.0  # parallel run lands near the reference


class TestFullPipelineUCDDCP:
    @pytest.fixture(scope="class")
    def outcome(self):
        inst = ucddcp_instance(25, 3)
        result = UCDDCPSolver(inst).solve(
            "parallel_sa", iterations=400, grid_size=2, block_size=48,
            seed=321,
        )
        return inst, result

    def test_schedule_feasible(self, outcome):
        inst, result = outcome
        validate_schedule(inst, result.schedule, require_no_idle=True)

    def test_lp_certified(self, outcome):
        inst, result = outcome
        lp = lp_optimize_sequence(inst, result.best_sequence)
        assert result.objective == pytest.approx(lp.objective, abs=1e-6)

    def test_compression_all_or_nothing(self, outcome):
        inst, result = outcome
        sched = result.schedule
        max_red = inst.max_reduction[sched.sequence]
        compressed = sched.reduction > 0
        assert np.allclose(sched.reduction[compressed],
                           max_red[compressed])

    def test_improves_on_cdd_relaxation_or_ties(self, outcome):
        inst, result = outcome
        relaxed = CDDSolver(inst.relax_to_cdd()).solve(
            "parallel_sa", iterations=400, grid_size=2, block_size=48,
            seed=321,
        )
        assert result.objective <= relaxed.objective + 1e-9


class TestCrossProcessReproducibility:
    def test_same_result_in_subprocess(self):
        # Determinism must hold across interpreter instances, not just
        # within one process (no hash-seed or dict-order dependence).
        code = (
            "from repro import CDDSolver, biskup_instance;"
            "r = CDDSolver(biskup_instance(15, 0.4, 1)).solve("
            "'parallel_sa', iterations=80, grid_size=1, block_size=32,"
            " seed=7);"
            "print(repr(r.objective))"
        )
        outs = set()
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", code], capture_output=True, text=True
            )
            assert proc.returncode == 0, proc.stderr
            outs.add(proc.stdout.strip())
        assert len(outs) == 1


class TestStoreRoundTripWithSolvers:
    def test_best_known_json_is_portable(self, tmp_path):
        inst = ucddcp_instance(6, 2)
        store = BestKnownStore(tmp_path / "bk.json")
        val = compute_best_known(inst, store, save=True)
        raw = json.loads((tmp_path / "bk.json").read_text())
        assert raw[inst.name]["objective"] == val
        assert raw[inst.name]["optimal"] is True
