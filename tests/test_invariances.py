"""Invariance properties of the sequence optimizers.

These are consequences of the problem structure that any correct
implementation must satisfy -- cheap, high-yield hypothesis checks that
complement the LP cross-validation:

* penalty scaling: multiplying all penalties by c scales the optimum by c;
* time scaling: multiplying all processing times and the due date by c
  scales the optimum by c (completion times scale likewise);
* due-date translation (unrestricted case): adding slack to an already
  unrestricted due date leaves the optimal *cost* unchanged (the schedule
  just translates);
* sequence-relabeling equivariance: permuting job labels and the sequence
  consistently changes nothing.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance
from repro.seqopt.cdd_linear import optimize_cdd_sequence
from repro.seqopt.ucddcp_linear import optimize_ucddcp_sequence
from tests.conftest import cdd_instances, ucddcp_instances


class TestPenaltyScaling:
    @given(inst=cdd_instances(min_n=2, max_n=8), c=st.integers(2, 9))
    def test_cdd(self, inst, c):
        seq = np.arange(inst.n)
        base = optimize_cdd_sequence(inst, seq)
        scaled = CDDInstance(
            inst.processing, c * inst.alpha, c * inst.beta, inst.due_date
        )
        out = optimize_cdd_sequence(scaled, seq)
        assert out.objective == pytest.approx(c * base.objective)
        # Optimal completion times are unchanged (same argmin).
        np.testing.assert_allclose(out.completion, base.completion)

    @given(inst=ucddcp_instances(min_n=2, max_n=8), c=st.integers(2, 9))
    def test_ucddcp(self, inst, c):
        seq = np.arange(inst.n)
        base = optimize_ucddcp_sequence(inst, seq)
        scaled = UCDDCPInstance(
            inst.processing, inst.min_processing, c * inst.alpha,
            c * inst.beta, c * inst.gamma, inst.due_date,
        )
        out = optimize_ucddcp_sequence(scaled, seq)
        assert out.objective == pytest.approx(c * base.objective)
        np.testing.assert_allclose(out.reduction, base.reduction)


class TestTimeScaling:
    @given(inst=cdd_instances(min_n=2, max_n=8), c=st.integers(2, 6))
    def test_cdd(self, inst, c):
        seq = np.arange(inst.n)
        base = optimize_cdd_sequence(inst, seq)
        scaled = CDDInstance(
            c * inst.processing, inst.alpha, inst.beta, c * inst.due_date
        )
        out = optimize_cdd_sequence(scaled, seq)
        assert out.objective == pytest.approx(c * base.objective)
        np.testing.assert_allclose(out.completion, c * base.completion)

    @given(inst=ucddcp_instances(min_n=2, max_n=8), c=st.integers(2, 6))
    def test_ucddcp(self, inst, c):
        seq = np.arange(inst.n)
        base = optimize_ucddcp_sequence(inst, seq)
        scaled = UCDDCPInstance(
            c * inst.processing, c * inst.min_processing, inst.alpha,
            inst.beta, inst.gamma, c * inst.due_date,
        )
        out = optimize_ucddcp_sequence(scaled, seq)
        assert out.objective == pytest.approx(c * base.objective)
        np.testing.assert_allclose(out.reduction, c * base.reduction)


class TestDueDateTranslation:
    @given(inst=cdd_instances(min_n=2, max_n=8), extra=st.integers(1, 40))
    def test_unrestricted_cdd_cost_invariant(self, inst, extra):
        # Once d >= sum(P), pushing d further right cannot change the
        # optimal cost for a fixed sequence -- the schedule translates.
        seq = np.arange(inst.n)
        d0 = float(inst.processing.sum())
        a = CDDInstance(inst.processing, inst.alpha, inst.beta, d0)
        b = CDDInstance(inst.processing, inst.alpha, inst.beta, d0 + extra)
        va = optimize_cdd_sequence(a, seq).objective
        vb = optimize_cdd_sequence(b, seq).objective
        assert va == pytest.approx(vb)

    @given(inst=ucddcp_instances(min_n=2, max_n=8), extra=st.integers(1, 40))
    def test_unrestricted_ucddcp_cost_invariant(self, inst, extra):
        seq = np.arange(inst.n)
        shifted = UCDDCPInstance(
            inst.processing, inst.min_processing, inst.alpha, inst.beta,
            inst.gamma, inst.due_date + extra,
        )
        va = optimize_ucddcp_sequence(inst, seq).objective
        vb = optimize_ucddcp_sequence(shifted, seq).objective
        assert va == pytest.approx(vb)


class TestRelabelingEquivariance:
    @given(inst=cdd_instances(min_n=2, max_n=8), seed=st.integers(0, 1000))
    def test_cdd(self, inst, seed):
        rng = np.random.default_rng(seed)
        relabel = rng.permutation(inst.n)
        # Relabeled instance: job relabel[i] of the new instance is job i.
        inv = np.argsort(relabel)
        renamed = CDDInstance(
            inst.processing[inv], inst.alpha[inv], inst.beta[inv],
            inst.due_date,
        )
        seq = rng.permutation(inst.n)
        base = optimize_cdd_sequence(inst, seq)
        # Same physical processing order expressed in new labels.
        out = optimize_cdd_sequence(renamed, relabel[seq])
        assert out.objective == pytest.approx(base.objective)
        np.testing.assert_allclose(out.completion, base.completion)

    @given(inst=ucddcp_instances(min_n=2, max_n=8), seed=st.integers(0, 1000))
    def test_ucddcp(self, inst, seed):
        rng = np.random.default_rng(seed)
        relabel = rng.permutation(inst.n)
        inv = np.argsort(relabel)
        renamed = UCDDCPInstance(
            inst.processing[inv], inst.min_processing[inv], inst.alpha[inv],
            inst.beta[inv], inst.gamma[inv], inst.due_date,
        )
        seq = rng.permutation(inst.n)
        base = optimize_ucddcp_sequence(inst, seq)
        out = optimize_ucddcp_sequence(renamed, relabel[seq])
        assert out.objective == pytest.approx(base.objective)
        np.testing.assert_allclose(out.reduction, base.reduction)
