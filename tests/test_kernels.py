"""The four paper kernels on the simulated device."""

import numpy as np
import pytest

from repro.gpusim.device import Device
from repro.gpusim.launch import linear_config
from repro.kernels.acceptance import make_acceptance_kernel
from repro.kernels.data import DeviceProblemData
from repro.kernels.fitness import (
    make_cdd_fitness_kernel,
    make_ucddcp_fitness_kernel,
)
from repro.kernels.perturbation import make_perturbation_kernel
from repro.kernels.reduction_kernel import make_reduction_kernel
from repro.permutation import batched_sample_distinct
from repro.seqopt.cdd_linear import optimize_cdd_sequence
from repro.seqopt.ucddcp_linear import optimize_ucddcp_sequence


@pytest.fixture()
def device():
    return Device(seed=7)


def upload_population(device, n, pop, seed=3, dtype=np.int32):
    rng = np.random.default_rng(seed)
    seqs = np.argsort(rng.random((pop, n)), axis=1).astype(dtype)
    buf = device.malloc((pop, n), dtype, "sequences")
    device.memcpy_htod(buf, seqs)
    return buf, seqs


class TestProblemData:
    def test_cdd_upload(self, device, paper_cdd):
        data = DeviceProblemData(device, paper_cdd)
        assert not data.is_ucddcp
        assert data.m is None and data.g is None
        assert np.array_equal(data.p.array, paper_cdd.processing)
        assert float(device.constant_mem["due_date"]) == 16.0
        assert int(device.constant_mem["n_jobs"]) == 5

    def test_ucddcp_upload(self, device, paper_ucddcp):
        data = DeviceProblemData(device, paper_ucddcp)
        assert data.is_ucddcp
        assert np.array_equal(data.m.array, paper_ucddcp.min_processing)
        assert np.array_equal(data.g.array, paper_ucddcp.gamma)

    def test_free_releases_memory(self, device, paper_ucddcp):
        used0 = device.global_mem.used_bytes
        data = DeviceProblemData(device, paper_ucddcp)
        assert device.global_mem.used_bytes > used0
        data.free()
        assert device.global_mem.used_bytes == used0

    def test_transfers_are_charged(self, paper_cdd):
        dev = Device(seed=0)
        DeviceProblemData(dev, paper_cdd)
        assert dev.profiler.memcpy_time() > 0


class TestFitnessKernels:
    def test_cdd_matches_scalar(self, device, paper_cdd):
        data = DeviceProblemData(device, paper_cdd)
        seq_buf, seqs = upload_population(device, 5, 64)
        out = device.malloc(64, np.float64, "fitness")
        device.launch(
            make_cdd_fitness_kernel(), linear_config(64, 32),
            seq_buf, data.p, data.a, data.b, out,
        )
        got = device.memcpy_dtoh(out)
        want = [
            optimize_cdd_sequence(paper_cdd, s.astype(np.intp)).objective
            for s in seqs
        ]
        np.testing.assert_allclose(got, want)

    def test_ucddcp_matches_scalar(self, device, paper_ucddcp):
        data = DeviceProblemData(device, paper_ucddcp)
        seq_buf, seqs = upload_population(device, 5, 64)
        out = device.malloc(64, np.float64, "fitness")
        device.launch(
            make_ucddcp_fitness_kernel(), linear_config(64, 32),
            seq_buf, data.p, data.m, data.a, data.b, data.g, out,
        )
        got = device.memcpy_dtoh(out)
        want = [
            optimize_ucddcp_sequence(paper_ucddcp, s.astype(np.intp)).objective
            for s in seqs
        ]
        np.testing.assert_allclose(got, want)

    def test_shared_memory_declared(self, paper_cdd, device):
        data = DeviceProblemData(device, paper_cdd)
        seq_buf, _ = upload_population(device, 5, 32)
        out = device.malloc(32, np.float64)
        k = make_cdd_fitness_kernel()
        shared = k.shared_bytes_for(seq_buf, data.p, data.a, data.b, out)
        assert shared == 2 * 5 * 8  # alpha + beta staged

    def test_syncthreads_protocol_followed(self, device, paper_cdd):
        data = DeviceProblemData(device, paper_cdd)
        seq_buf, _ = upload_population(device, 5, 32)
        out = device.malloc(32, np.float64)
        before = device.syncthreads_count
        device.launch(
            make_cdd_fitness_kernel(), linear_config(32, 32),
            seq_buf, data.p, data.a, data.b, out,
        )
        assert device.syncthreads_count == before + 1

    def test_fitness_kernel_cost_grows_with_n(self, paper_cdd):
        from repro.instances.biskup import biskup_instance

        def one_launch_time(n):
            dev = Device(seed=0)
            inst = biskup_instance(n, 0.4, 1)
            data = DeviceProblemData(dev, inst)
            seq_buf, _ = upload_population(dev, n, 64)
            out = dev.malloc(64, np.float64)
            dev.reset_clocks()
            dev.launch(
                make_cdd_fitness_kernel(), linear_config(64, 32),
                seq_buf, data.p, data.a, data.b, out,
            )
            dev.synchronize()
            return dev.profiler.kernel_time()

        assert one_launch_time(200) > one_launch_time(20)


class TestPerturbationKernel:
    def test_produces_valid_neighbours(self, device, paper_cdd):
        seq_buf, seqs = upload_population(device, 5, 48)
        cand = device.malloc((48, 5), np.int32, "candidates")
        pos = device.malloc((48, 4), np.int64, "positions")
        pos.array[:] = batched_sample_distinct(
            device.rng, np.arange(48), 5, 4
        )
        device.launch(
            make_perturbation_kernel(), linear_config(48, 16),
            seq_buf, cand, pos, False,
        )
        out = device.memcpy_dtoh(cand)
        for row in out:
            assert np.array_equal(np.sort(row), np.arange(5))

    def test_parent_untouched(self, device, paper_cdd):
        seq_buf, seqs = upload_population(device, 5, 16)
        cand = device.malloc((16, 5), np.int32)
        pos = device.malloc((16, 4), np.int64)
        pos.array[:] = batched_sample_distinct(
            device.rng, np.arange(16), 5, 4
        )
        device.launch(
            make_perturbation_kernel(), linear_config(16, 16),
            seq_buf, cand, pos, False,
        )
        assert np.array_equal(device.memcpy_dtoh(seq_buf), seqs)

    def test_untouched_positions_preserved(self, device):
        seq_buf, seqs = upload_population(device, 8, 16)
        cand = device.malloc((16, 8), np.int32)
        pos = device.malloc((16, 3), np.int64)
        pos.array[:] = batched_sample_distinct(
            device.rng, np.arange(16), 8, 3
        )
        device.launch(
            make_perturbation_kernel(), linear_config(16, 16),
            seq_buf, cand, pos, False,
        )
        out = device.memcpy_dtoh(cand)
        mask = np.ones((16, 8), bool)
        mask[np.arange(16)[:, None], pos.array] = False
        assert np.array_equal(out[mask], seqs[mask])


class TestAcceptanceKernel:
    def _setup(self, device, pop=32, n=5):
        seqs = device.malloc((pop, n), np.int32)
        cand = device.malloc((pop, n), np.int32)
        seqs.array[:] = np.arange(n)
        cand.array[:] = np.arange(n)[::-1]
        e = device.malloc(pop, np.float64)
        ec = device.malloc(pop, np.float64)
        return seqs, cand, e, ec

    def test_improvements_always_accepted(self, device):
        seqs, cand, e, ec = self._setup(device)
        e.array[:] = 100.0
        ec.array[:] = 50.0
        device.launch(
            make_acceptance_kernel(), linear_config(32, 32),
            seqs, cand, e, ec, 1e-9,
        )
        assert np.all(e.array == 50.0)
        assert np.all(seqs.array == cand.array)

    def test_zero_temperature_rejects_worse(self, device):
        seqs, cand, e, ec = self._setup(device)
        e.array[:] = 50.0
        ec.array[:] = 100.0
        device.launch(
            make_acceptance_kernel(), linear_config(32, 32),
            seqs, cand, e, ec, 0.0,
        )
        assert np.all(e.array == 50.0)
        assert np.all(seqs.array[:, 0] == 0)  # parent kept

    def test_high_temperature_accepts_most(self, device):
        seqs, cand, e, ec = self._setup(device, pop=512)
        e.array[:] = 50.0
        ec.array[:] = 51.0  # slightly worse
        device.launch(
            make_acceptance_kernel(), linear_config(512, 128),
            seqs, cand, e, ec, 1e6,
        )
        accepted = (e.array == 51.0).mean()
        assert accepted > 0.95

    def test_metropolis_probability_statistics(self, device):
        # Delta = T -> acceptance probability exp(-1) ~ 0.368.
        pop = 4096
        seqs = device.malloc((pop, 2), np.int32)
        cand = device.malloc((pop, 2), np.int32)
        e = device.malloc(pop, np.float64)
        ec = device.malloc(pop, np.float64)
        e.array[:] = 0.0
        ec.array[:] = 1.0
        device.launch(
            make_acceptance_kernel(), linear_config(pop, 256),
            seqs, cand, e, ec, 1.0,
        )
        rate = (e.array == 1.0).mean()
        assert abs(rate - np.exp(-1)) < 0.03


class TestReductionKernel:
    def test_finds_minimum(self, device, rng):
        pop = 128
        e = device.malloc(pop, np.float64)
        e.array[:] = rng.uniform(10, 100, pop)
        e.array[37] = 1.5
        res = device.malloc(2, np.float64)
        device.launch(
            make_reduction_kernel(), linear_config(pop, 64), e, res
        )
        out = device.memcpy_dtoh(res)
        assert out[0] == 1.5
        assert int(out[1]) == 37

    def test_atomic_cost_charged(self, device):
        pop = 256
        e = device.malloc(pop, np.float64)
        res = device.malloc(2, np.float64)
        device.reset_clocks()
        device.launch(
            make_reduction_kernel(), linear_config(pop, 64), e, res
        )
        device.synchronize()
        t = device.profiler.kernel_time()
        assert t >= pop * device.spec.atomic_op_s


class TestTextureVariant:
    def test_texture_kernel_same_numbers(self, device, paper_cdd):
        data = DeviceProblemData(device, paper_cdd)
        seq_buf, seqs = upload_population(device, 5, 32)
        out_plain = device.malloc(32, np.float64)
        out_tex = device.malloc(32, np.float64)
        device.launch(
            make_cdd_fitness_kernel(False), linear_config(32, 32),
            seq_buf, data.p, data.a, data.b, out_plain,
        )
        device.launch(
            make_cdd_fitness_kernel(True), linear_config(32, 32),
            seq_buf, data.p, data.a, data.b, out_tex,
        )
        assert np.array_equal(out_plain.array, out_tex.array)

    def test_texture_kernel_cheaper(self, paper_cdd):
        from repro.instances.biskup import biskup_instance

        inst = biskup_instance(500, 0.4, 1)

        def launch_time(use_texture):
            dev = Device(seed=0)
            data = DeviceProblemData(dev, inst)
            seq_buf, _ = upload_population(dev, 500, 192)
            out = dev.malloc(192, np.float64)
            dev.reset_clocks()
            dev.launch(
                make_cdd_fitness_kernel(use_texture),
                linear_config(192, 192),
                seq_buf, data.p, data.a, data.b, out,
            )
            dev.synchronize()
            return dev.profiler.kernel_time()

        assert launch_time(True) < launch_time(False)

    def test_texture_kernel_named_distinctly(self):
        assert make_cdd_fitness_kernel(True).name == "fitness_cdd_tex"
        assert make_cdd_fitness_kernel(False).name == "fitness_cdd"
        assert make_ucddcp_fitness_kernel(True).name == "fitness_ucddcp_tex"

    def test_parallel_sa_texture_option(self, paper_cdd):
        from repro.core.parallel_sa import ParallelSAConfig, parallel_sa

        base = dict(iterations=60, grid_size=1, block_size=32, seed=2)
        plain = parallel_sa(paper_cdd, ParallelSAConfig(**base))
        tex = parallel_sa(
            paper_cdd, ParallelSAConfig(use_texture=True, **base)
        )
        # Same search trajectory, cheaper modeled time.
        assert tex.objective == plain.objective
        assert tex.modeled_device_time_s < plain.modeled_device_time_s
