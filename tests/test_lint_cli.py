"""``repro lint`` CLI contract: exit codes 0/1/2 and the stable JSON
artifact schema CI uploads."""

import json
import textwrap

import pytest

from repro.cli import main

CLEAN = "def tidy(seed):\n    return seed\n"

DIRTY = textwrap.dedent(
    """
    import numpy as np
    def fresh():
        return np.random.default_rng()
    """
)


@pytest.fixture
def tree(tmp_path):
    """A minimal repo layout the linter can treat as a root."""
    pkg = tmp_path / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    return tmp_path


def write(tree, name, code):
    path = tree / "src" / "repro" / "core" / name
    path.write_text(code)
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        write(tree, "tidy.py", CLEAN)
        rc = main(["lint", "--root", str(tree), str(tree / "src")])
        assert rc == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tree, capsys):
        write(tree, "dirty.py", DIRTY)
        rc = main(["lint", "--root", str(tree), str(tree / "src")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "RPL003" in out and "dirty.py:4" in out

    def test_missing_path_exits_two(self, tree, capsys):
        rc = main(["lint", "--root", str(tree), str(tree / "nowhere")])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_select_code_exits_two(self, tree, capsys):
        write(tree, "tidy.py", CLEAN)
        rc = main(["lint", "--root", str(tree), "--select", "RPL314",
                   str(tree / "src")])
        assert rc == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_unknown_ignore_code_exits_two(self, tree, capsys):
        # A typo'd --ignore must fail loudly, not silently ignore
        # nothing while the caller believes a rule is off.
        write(tree, "tidy.py", CLEAN)
        rc = main(["lint", "--root", str(tree), "--ignore", "RPL099",
                   str(tree / "src")])
        assert rc == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_malformed_policy_exits_two(self, tree, capsys):
        write(tree, "tidy.py", CLEAN)
        (tree / "pyproject.toml").write_text(
            "[tool.repro-lint.rules.RPL001]\nexclude = ['src/']\n"
        )
        rc = main(["lint", "--root", str(tree), str(tree / "src")])
        assert rc == 2
        assert "reason" in capsys.readouterr().err

    def test_bad_flag_usage_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--format", "yaml"])
        assert excinfo.value.code == 2

    def test_select_ignore_roundtrip(self, tree, capsys):
        write(tree, "dirty.py", DIRTY)
        assert main(["lint", "--root", str(tree), "--ignore", "RPL003",
                     str(tree / "src")]) == 0
        assert main(["lint", "--root", str(tree), "--select", "RPL003",
                     str(tree / "src")]) == 1
        capsys.readouterr()


class TestJsonSchema:
    def read_payload(self, capsys):
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["tool"] == "repro-lint"
        return payload

    def test_clean_payload_shape(self, tree, capsys):
        write(tree, "tidy.py", CLEAN)
        rc = main(["lint", "--root", str(tree), "--format", "json",
                   str(tree / "src")])
        assert rc == 0
        payload = self.read_payload(capsys)
        assert payload["files_checked"] == 1
        assert payload["counts"] == {}
        assert payload["findings"] == []

    def test_finding_payload_shape(self, tree, capsys):
        write(tree, "dirty.py", DIRTY)
        rc = main(["lint", "--root", str(tree), "--format", "json",
                   str(tree / "src")])
        assert rc == 1
        payload = self.read_payload(capsys)
        assert payload["counts"] == {"RPL003": 1}
        (finding,) = payload["findings"]
        assert set(finding) == {
            "path", "line", "col", "code", "severity", "rule", "message",
        }
        assert finding["path"] == "src/repro/core/dirty.py"
        assert finding["code"] == "RPL003"
        assert finding["severity"] == "error"
        assert finding["rule"] == "seeded-generators-only"

    def test_json_output_is_byte_stable(self, tree, capsys):
        write(tree, "dirty.py", DIRTY)
        main(["lint", "--root", str(tree), "--format", "json",
              str(tree / "src")])
        first = capsys.readouterr().out
        main(["lint", "--root", str(tree), "--format", "json",
              str(tree / "src")])
        second = capsys.readouterr().out
        assert first == second


class TestListRules:
    def test_catalog_listing(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RPL001", "RPL008", "RPL011", "RPL012", "RPL013",
                     "RPL000", "RPL999"):
            assert code in out


class TestConcurrencySelect:
    def test_select_concurrency_rules_only(self, tree, capsys):
        # The CI concurrency-lint job's exact invocation: the RNG
        # violation in DIRTY is out of scope, so a clean exit.
        write(tree, "dirty.py", DIRTY)
        rc = main(["lint", "--root", str(tree),
                   "--select", "RPL011,RPL012,RPL013",
                   "--format", "json", str(tree / "src")])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
