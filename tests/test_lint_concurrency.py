"""The concurrency analyzer: ProjectIndex facts and rules RPL011–RPL013.

Each rule gets the catalog treatment (planted violation detected,
idiomatic fix silent) plus the cross-module cases the project index
exists for: guards inferred through held-at-entry helpers, lock-order
cycles spanning two files, and blocking calls reached under a lock.
"""

import ast
import textwrap

from repro.lint.engine import LintEngine
from repro.lint.index import ProjectIndex, module_name
from repro.lint.model import SourceFile
from repro.lint.policy import Policy

#: Paths inside the concurrency rules' default scope.
SERVICE_PATH = "src/repro/service/fixture.py"
POOL_PATH = "src/repro/pool/fixture.py"


def lint(code, path=SERVICE_PATH):
    engine = LintEngine(policy=Policy())
    return engine.lint_source(textwrap.dedent(code), path)


def codes(findings):
    return [f.code for f in findings]


def build_index(**modules):
    """A ProjectIndex over ``{rel_path: code}`` fixture modules."""
    sources = []
    for rel_path, code in modules.items():
        text = textwrap.dedent(code)
        sources.append(SourceFile(text, rel_path, ast.parse(text)))
    return ProjectIndex.build(sources)


class TestProjectIndex:
    def test_module_name_strips_src_prefix(self):
        assert module_name("src/repro/service/api.py") == (
            "repro.service.api"
        )
        assert module_name("tools/gen.py") == "tools.gen"

    def test_lock_attrs_and_constructor_types(self):
        index = build_index(**{SERVICE_PATH: """
            import queue
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cv = threading.Condition()
                    self._inbox = queue.Queue()
        """})
        (cls,) = index.classes
        assert sorted(cls.lock_attrs) == ["_cv", "_lock"]
        assert cls.attr_types["_inbox"] == "queue.Queue"

    def test_annotations_type_attributes(self):
        index = build_index(**{SERVICE_PATH: """
            import queue
            import threading

            class Box:
                def __init__(self, peer: "threading.Event"):
                    self._q: "queue.Queue[int]" = queue.Queue()
                    self.peer = peer
                    self.names: list[str] = []
        """})
        (cls,) = index.classes
        assert cls.attr_types["_q"] == "queue.Queue"
        assert cls.attr_types["peer"] == "threading.Event"
        # A container annotation types the container, which resolves to
        # nothing — `list` is not an imported name.
        assert "names" not in cls.attr_types

    def test_entry_held_fixed_point(self):
        # `_note` is only ever called with `_lock` held, so it is
        # analyzed as holding the lock at entry.
        index = build_index(**{SERVICE_PATH: """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.n = 0

                def create(self):
                    with self._lock:
                        self._note()

                def update(self):
                    with self._lock:
                        self._note()

                def _note(self):
                    self.n += 1
        """})
        (cls,) = index.classes
        assert cls.methods["_note"].entry_held == frozenset({"_lock"})

    def test_guarded_by_comment_scan(self):
        index = build_index(**{SERVICE_PATH: """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.state = "idle"  # repro-lint: guarded-by=_lock
        """})
        (cls,) = index.classes
        assert cls.guarded_by == {"state": "_lock"}


class TestRPL011GuardedFields:
    def test_detects_lock_free_read_of_guarded_field(self):
        findings = lint(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def bump(self):
                    with self._lock:
                        self.total += 1

                def peek(self):
                    return self.total
            """
        )
        assert codes(findings) == ["RPL011"]
        assert "without holding `self._lock`" in findings[0].message
        assert "guarded-by" in findings[0].message

    def test_allows_consistent_discipline(self):
        findings = lint(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def bump(self):
                    with self._lock:
                        self.total += 1

                def peek(self):
                    with self._lock:
                        return self.total
            """
        )
        assert findings == []

    def test_init_writes_are_exempt(self):
        # Construction happens-before publication; only the post-init
        # lock-free read is a race.  (Covered by the violation fixture:
        # the `__init__` write itself is never reported.)
        findings = lint(
            """
            import threading

            class Quiet:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def reset(self):
                    with self._lock:
                        self.total = 0
            """
        )
        assert findings == []

    def test_self_synchronized_types_exempt(self):
        findings = lint(
            """
            import queue
            import threading

            class Pump:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._inbox = queue.Queue()

                def push(self, item):
                    with self._lock:
                        self._inbox.put_nowait(item)

                def take_nowait(self):
                    return self._inbox.get_nowait()
            """
        )
        assert findings == []

    def test_declared_guard_enforced_without_locked_writes(self):
        findings = lint(
            """
            import threading

            class Declared:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.state = "idle"  # repro-lint: guarded-by=_lock

                def peek(self):
                    return self.state
            """
        )
        assert codes(findings) == ["RPL011"]
        assert "declared `guarded-by=_lock`" in findings[0].message

    def test_declared_guard_must_name_a_real_lock(self):
        findings = lint(
            """
            import threading

            class Bad:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.state = "idle"  # repro-lint: guarded-by=_mutex
            """
        )
        assert codes(findings) == ["RPL011"]
        assert "names no lock" in findings[0].message

    def test_disagreeing_writes_infer_nothing(self):
        # Writes under different locks: the intersection is empty, so
        # the rule stays silent rather than guessing a guard.
        findings = lint(
            """
            import threading

            class Mixed:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self.n = 0

                def one(self):
                    with self._a:
                        self.n += 1

                def two(self):
                    with self._b:
                        self.n += 1
            """
        )
        assert findings == []

    def test_guard_inferred_through_entry_held_helper(self):
        # The write sits in a helper that only runs with the lock held
        # at entry — the read in `peek` still races.
        findings = lint(
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.evicted = 0

                def evict(self):
                    with self._lock:
                        self._note()

                def _note(self):
                    self.evicted += 1

                def peek(self):
                    return self.evicted
            """
        )
        assert codes(findings) == ["RPL011"]
        assert "self.evicted" in findings[0].message


class TestRPL012LockOrder:
    def test_detects_in_class_inversion(self):
        findings = lint(
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            return 1

                def backward(self):
                    with self._b:
                        with self._a:
                            return 2
            """
        )
        assert codes(findings) == ["RPL012"]
        message = findings[0].message
        assert "lock-order cycle" in message
        assert "Pair._a" in message and "Pair._b" in message

    def test_allows_one_global_order(self):
        findings = lint(
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            return 1

                def also_forward(self):
                    with self._a:
                        with self._b:
                            return 2
            """
        )
        assert findings == []

    def test_reentrant_holds_are_not_an_ordering(self):
        findings = lint(
            """
            import threading

            class Reentrant:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        with self._lock:
                            return 1
            """
        )
        assert findings == []

    def test_detects_cross_module_cycle(self, tmp_path):
        # api holds its lock and calls into the registry; the registry
        # holds its lock and calls back — neither file alone is wrong.
        api = textwrap.dedent(
            """
            import threading

            from repro.service.regfix import Registry

            class Api:
                def __init__(self, registry: "Registry"):
                    self._lock = threading.Lock()
                    self.registry = registry

                def poke(self):
                    with self._lock:
                        return 0

                def submit(self):
                    with self._lock:
                        return self.registry.create()
            """
        )
        reg = textwrap.dedent(
            """
            import threading

            from repro.service.apifix import Api

            class Registry:
                def __init__(self, owner: "Api"):
                    self._lock = threading.Lock()
                    self.owner = owner

                def create(self):
                    with self._lock:
                        return 1

                def evict(self):
                    with self._lock:
                        self.owner.poke()
            """
        )
        pkg = tmp_path / "src" / "repro" / "service"
        pkg.mkdir(parents=True)
        (pkg / "apifix.py").write_text(api)
        (pkg / "regfix.py").write_text(reg)
        engine = LintEngine(policy=Policy(), root=tmp_path)
        result = engine.lint_paths([tmp_path / "src"])
        assert codes(result.findings) == ["RPL012"]
        message = result.findings[0].message
        assert "Api._lock" in message and "Registry._lock" in message
        assert "via the call at" in message

    def test_call_through_helper_contributes_edges(self):
        # submit holds `_a` and calls a helper that takes `_b`; shut
        # takes them the other way around — a cycle through one call.
        findings = lint(
            """
            import threading

            class Chain:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def submit(self):
                    with self._a:
                        self._record()

                def _record(self):
                    with self._b:
                        return 1

                def shut(self):
                    with self._b:
                        with self._a:
                            return 2
            """
        )
        assert codes(findings) == ["RPL012"]


class TestRPL013BlockingUnderLock:
    def test_detects_fsync_append_under_lock(self):
        findings = lint(
            """
            import threading

            from repro.resilience.atomic import durable_append_text

            class Journal:
                def __init__(self, path):
                    self._lock = threading.Lock()
                    self.path = path

                def append(self, line):
                    with self._lock:
                        return durable_append_text(self.path, line)
            """
        )
        assert codes(findings) == ["RPL013"]
        assert "durable_append_text" in findings[0].message
        assert "fsync" in findings[0].message

    def test_detects_sleep_and_queue_get_under_lock(self):
        findings = lint(
            """
            import queue
            import threading
            import time

            class Pump:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._inbox = queue.Queue()

                def wait_one(self):
                    with self._lock:
                        time.sleep(0.1)
                        return self._inbox.get()
            """
        )
        assert codes(findings) == ["RPL013", "RPL013"]
        assert "a sleep" in findings[0].message
        assert "Queue.get" in findings[1].message

    def test_detects_blocking_in_entry_held_helper(self):
        findings = lint(
            """
            import os
            import threading

            class Journal:
                def __init__(self):
                    self._lock = threading.Lock()

                def append(self, fd):
                    with self._lock:
                        self._flush(fd)

                def _flush(self, fd):
                    os.fsync(fd)
            """
        )
        assert codes(findings) == ["RPL013"]
        assert "held at method entry" in findings[0].message

    def test_allows_blocking_outside_the_critical_section(self):
        findings = lint(
            """
            import os
            import threading

            class Journal:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.appends = 0

                def append(self, fd):
                    with self._lock:
                        self.appends += 1
                    os.fsync(fd)
            """
        )
        assert findings == []

    def test_nonblocking_queue_calls_pass(self):
        findings = lint(
            """
            import queue
            import threading

            class Pump:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._inbox = queue.Queue()

                def push(self, item):
                    with self._lock:
                        self._inbox.put_nowait(item)
            """
        )
        assert findings == []

    def test_out_of_scope_paths_unchecked(self):
        findings = lint(
            """
            import threading
            import time

            class Pacer:
                def __init__(self):
                    self._lock = threading.Lock()

                def tick(self):
                    with self._lock:
                        time.sleep(0.1)
            """,
            path="src/repro/core/fixture.py",
        )
        assert findings == []


class TestConcurrencySuppressions:
    VIOLATION = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.total = 0

            def bump(self):
                with self._lock:
                    self.total += 1

            def peek(self):
                return self.total{comment}
    """

    def test_suppression_with_rationale_silences(self):
        findings = lint(self.VIOLATION.format(
            comment="  # repro-lint: disable=RPL011 -- metrics snapshot"
                    " tolerates a stale read"
        ))
        assert findings == []

    def test_multi_code_suppression_audits_unmatched_code(self):
        findings = lint(self.VIOLATION.format(
            comment="  # repro-lint: disable=RPL011,RPL012 -- stale read"
                    " is fine here"
        ))
        assert codes(findings) == ["RPL000"]
        assert "RPL012 matched no finding" in findings[0].message

    def test_suppression_without_rationale_is_audited(self):
        findings = lint(self.VIOLATION.format(
            comment="  # repro-lint: disable=RPL011"
        ))
        assert codes(findings) == ["RPL000"]
        assert "missing rationale" in findings[0].message
