"""Engine behavior: suppressions (with audit), policy scoping, selection,
parse-error handling, and output stability."""

import textwrap

import pytest

from repro.lint.engine import LintEngine
from repro.lint.policy import Policy, PolicyError, path_matches
from repro.lint.suppress import scan_suppressions

CORE_PATH = "src/repro/core/fixture.py"

VIOLATION = """
import random
def perturb(seq):
    random.shuffle(seq)
"""


def lint(code, path=CORE_PATH, **engine_kwargs):
    engine = LintEngine(policy=engine_kwargs.pop("policy", Policy()),
                        **engine_kwargs)
    return engine.lint_source(textwrap.dedent(code), path)


class TestSuppressions:
    def test_suppression_with_rationale_silences_finding(self):
        findings = lint(
            """
            import random
            def perturb(seq):
                random.shuffle(seq)  # repro-lint: disable=RPL001 -- test fixture exercising the legacy path
            """
        )
        assert findings == []

    def test_suppression_without_rationale_is_audited(self):
        findings = lint(
            """
            import random
            def perturb(seq):
                random.shuffle(seq)  # repro-lint: disable=RPL001
            """
        )
        assert [f.code for f in findings] == ["RPL000"]
        assert "missing rationale" in findings[0].message

    def test_unused_suppression_is_audited(self):
        findings = lint(
            """
            def clean():
                return 1  # repro-lint: disable=RPL001 -- stale after refactor
            """
        )
        assert [f.code for f in findings] == ["RPL000"]
        assert "matched no finding" in findings[0].message

    def test_unknown_code_is_audited(self):
        findings = lint(
            """
            def clean():
                return 1  # repro-lint: disable=RPL042 -- no such rule
            """
        )
        assert [f.code for f in findings] == ["RPL000"]
        assert "unknown code RPL042" in findings[0].message

    def test_suppression_only_covers_its_own_line(self):
        findings = lint(
            """
            import random
            def perturb(seq):  # repro-lint: disable=RPL001 -- wrong line
                random.shuffle(seq)
            """
        )
        codes = sorted(f.code for f in findings)
        assert codes == ["RPL000", "RPL001"]  # unused + unsuppressed

    def test_multiple_codes_one_comment(self):
        findings = lint(
            """
            import random, time
            def perturb(seq):
                random.shuffle(seq); time.time()  # repro-lint: disable=RPL001,RPL002 -- fixture
            """
        )
        assert findings == []

    def test_directive_inside_string_is_not_a_suppression(self):
        table = scan_suppressions(
            'text = "# repro-lint: disable=RPL001 -- not a comment"\n',
            "f.py",
        )
        assert table == {}

    def test_meta_code_cannot_be_suppressed(self):
        findings = lint(
            """
            def clean():
                return 1  # repro-lint: disable=RPL000 -- nice try
            """
        )
        assert [f.code for f in findings] == ["RPL000"]
        assert "meta code" in findings[0].message


class TestPolicyScoping:
    def test_rule_exclude_requires_reason(self):
        with pytest.raises(PolicyError, match="requires a non-empty `reason`"):
            Policy.from_table(
                {"rules": {"RPL001": {"exclude": ["src/repro/core/"]}}}
            )

    def test_exclude_with_reason_exempts_path(self):
        policy = Policy.from_table({
            "rules": {"RPL001": {
                "exclude": ["src/repro/core/fixture.py"],
                "reason": "fixture exercises the legacy API deliberately",
            }},
        })
        assert lint(VIOLATION, policy=policy) == []
        # ...but only that path: a sibling is still checked.
        other = lint(VIOLATION, path="src/repro/core/other.py",
                     policy=policy)
        assert [f.code for f in other] == ["RPL001"]

    def test_include_overrides_default_scope(self):
        policy = Policy.from_table({
            "rules": {"RPL001": {"include": ["src/repro/experiments/"]}},
        })
        # Default scope no longer applies...
        assert lint(VIOLATION, policy=policy) == []
        # ...the policy scope does.
        widened = lint(VIOLATION, path="src/repro/experiments/fixture.py",
                       policy=policy)
        assert [f.code for f in widened] == ["RPL001"]

    def test_global_exclude_skips_every_rule(self):
        policy = Policy.from_table({"exclude": ["src/repro/core/"]})
        assert lint(VIOLATION, policy=policy) == []

    def test_policy_ignore_and_select(self):
        assert lint(VIOLATION,
                    policy=Policy.from_table({"ignore": ["RPL001"]})) == []
        assert lint(VIOLATION,
                    policy=Policy.from_table({"select": ["RPL002"]})) == []

    def test_unknown_policy_key_rejected(self):
        with pytest.raises(PolicyError, match="unknown key"):
            Policy.from_table({"surprise": True})

    def test_unknown_rule_code_rejected_at_engine_construction(self):
        with pytest.raises(PolicyError, match="unknown rule code"):
            LintEngine(policy=Policy.from_table({"ignore": ["RPL0XX"]}))

    def test_path_matches_prefix_and_exact(self):
        assert path_matches("src/repro/pool/executor.py", "src/repro/pool/")
        assert path_matches("src/repro/cli.py", "src/repro/cli.py")
        assert not path_matches("src/repro/pooling.py", "src/repro/pool")
        assert not path_matches("src/repro/cli.py", "")


class TestEngineSelection:
    def test_cli_select_restricts(self):
        findings = lint(VIOLATION, select=["RPL002"])
        assert findings == []
        findings = lint(VIOLATION, select=["RPL001"])
        assert [f.code for f in findings] == ["RPL001"]

    def test_cli_ignore_drops(self):
        assert lint(VIOLATION, ignore=["RPL001"]) == []

    def test_unknown_cli_code_rejected(self):
        with pytest.raises(PolicyError, match="unknown rule code"):
            LintEngine(select=["RPL314"])

    def test_parse_error_becomes_rpl999(self):
        findings = lint("def broken(:\n")
        assert [f.code for f in findings] == ["RPL999"]
        assert findings[0].severity == "error"

    def test_findings_sorted_and_stable(self):
        code = """
        import random, time
        def a(seq):
            time.time()
            random.shuffle(seq)
        """
        first = lint(code)
        second = lint(code)
        assert first == second
        assert first == sorted(first)
        assert [f.code for f in first] == ["RPL002", "RPL001"]  # line order
