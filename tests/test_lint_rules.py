"""Per-rule fixtures for the repro-lint catalog: every RPL rule must
detect its planted violation and stay silent on the idiomatic fix."""

import textwrap

import pytest

from repro.lint.engine import LintEngine
from repro.lint.policy import Policy
from repro.lint.rules import RULES, iter_rules

#: A path inside every rule's default scope.
POOL_PATH = "src/repro/pool/fixture.py"
CORE_PATH = "src/repro/core/fixture.py"
GPUSIM_PATH = "src/repro/gpusim/fixture.py"


def lint(code, path=CORE_PATH):
    engine = LintEngine(policy=Policy())
    return engine.lint_source(textwrap.dedent(code), path)


def codes(findings):
    return [f.code for f in findings]


class TestCatalog:
    def test_thirteen_rules_registered(self):
        assert sorted(RULES) == [
            "RPL001", "RPL002", "RPL003", "RPL004",
            "RPL005", "RPL006", "RPL007", "RPL008", "RPL009",
            "RPL010", "RPL011", "RPL012", "RPL013",
        ]

    def test_rules_carry_metadata(self):
        for rule in iter_rules():
            assert rule.code and rule.name and rule.summary
            assert rule.severity in ("error", "warning")
            assert rule.__doc__ and rule.code in rule.__doc__

    def test_project_rules_are_marked(self):
        # RPL011–RPL013 need the cross-module index; everything earlier
        # stays a per-file rule.
        project = sorted(r.code for r in iter_rules() if r.project)
        assert project == ["RPL011", "RPL012", "RPL013"]


class TestRPL001GlobalRandomState:
    def test_detects_stdlib_global_shuffle(self):
        findings = lint(
            """
            import random
            def perturb(seq):
                random.shuffle(seq)
            """
        )
        assert codes(findings) == ["RPL001"]
        assert "process-wide RNG" in findings[0].message

    def test_detects_numpy_legacy_through_alias(self):
        findings = lint(
            """
            import numpy as np
            def draw(n):
                return np.random.rand(n)
            """
        )
        assert codes(findings) == ["RPL001"]
        assert "legacy global RandomState" in findings[0].message

    def test_detects_from_import_binding(self):
        findings = lint(
            """
            from numpy import random as nprandom
            def draw(n):
                return nprandom.permutation(n)
            """
        )
        assert codes(findings) == ["RPL001"]

    def test_allows_seeded_generator_and_random_instance(self):
        findings = lint(
            """
            import random
            import numpy as np
            def draw(seed, n):
                rng = np.random.default_rng(seed)
                local = random.Random(seed)
                return rng.permutation(n), local.random()
            """
        )
        assert findings == []

    def test_instance_methods_never_resolve(self):
        # self._rng.random() is a Generator method, not the global state.
        findings = lint(
            """
            class T:
                def step(self):
                    return self._rng.random()
            """
        )
        assert findings == []

    def test_out_of_scope_path_not_checked(self):
        findings = lint(
            """
            import random
            def jitter():
                return random.random()
            """,
            path="src/repro/experiments/fixture.py",
        )
        assert findings == []


class TestRPL002WallClock:
    @pytest.mark.parametrize("snippet", [
        "import time\ndef stamp():\n    return time.time()\n",
        "import os\ndef token():\n    return os.urandom(8)\n",
        "from datetime import datetime\ndef when():\n"
        "    return datetime.now()\n",
        "import uuid\ndef ident():\n    return uuid.uuid4()\n",
    ])
    def test_detects_wall_clock_reads(self, snippet):
        assert codes(lint(snippet, path=GPUSIM_PATH)) == ["RPL002"]

    def test_allows_perf_counter_measurement(self):
        findings = lint(
            """
            import time
            def measure(fn):
                start = time.perf_counter()
                fn()
                return time.perf_counter() - start
            """
        )
        assert findings == []


class TestRPL003SeededGenerators:
    def test_detects_unseeded_default_rng_everywhere(self):
        # Applies to all paths — e.g. the CLI, where the motivating bug
        # hard-coded default_rng(0) instead of threading --seed through.
        findings = lint(
            """
            import numpy as np
            def fresh():
                return np.random.default_rng()
            """,
            path="src/repro/experiments/fixture.py",
        )
        assert codes(findings) == ["RPL003"]
        assert "OS entropy" in findings[0].message

    def test_detects_global_reseeding(self):
        findings = lint(
            """
            import numpy as np
            import random
            def reset(seed):
                np.random.seed(seed)
                random.seed(seed)
            """,
            path="src/repro/analysis/fixture.py",
        )
        assert codes(findings) == ["RPL003", "RPL003"]

    def test_allows_seeded_construction(self):
        findings = lint(
            """
            import numpy as np
            def stream(seed):
                return np.random.default_rng(seed)
            """
        )
        assert findings == []


class TestRPL004SetIteration:
    def test_detects_for_loop_over_set_call(self):
        findings = lint(
            """
            def emit(items, out):
                for item in set(items):
                    out.append(item)
            """
        )
        assert codes(findings) == ["RPL004"]

    def test_detects_list_comp_over_set_literal(self):
        findings = lint(
            """
            def order():
                return [x for x in {3, 1, 2}]
            """
        )
        assert codes(findings) == ["RPL004"]

    def test_detects_list_and_join_consumers(self):
        findings = lint(
            """
            def render(names):
                return ", ".join(set(names)), list(set(names))
            """
        )
        assert codes(findings) == ["RPL004", "RPL004"]

    def test_allows_sorted_and_reductions(self):
        findings = lint(
            """
            def stable(names):
                ordered = sorted(set(names))
                total = sum({1, 2, 3})
                return ordered, total, min(set(names))
            """
        )
        assert findings == []


class TestRPL005PoolTasks:
    def test_detects_lambda_task(self):
        findings = lint(
            """
            def run(pool, xs):
                return pool.map(lambda x: x + 1, xs)
            """,
            path=POOL_PATH,
        )
        assert codes(findings) == ["RPL005"]

    def test_detects_lambda_in_imap_tasks(self):
        findings = lint(
            """
            def run(p, xs):
                return list(p.imap_unordered([(lambda x: x, (x,))
                                              for x in xs]))
            """
        )
        assert codes(findings) == ["RPL005"]

    def test_detects_nested_function_task(self):
        findings = lint(
            """
            def run(pool, xs):
                def work(x):
                    return x + 1
                return pool.run_thunks([work])
            """
        )
        assert codes(findings) == ["RPL005"]
        assert "work" in findings[0].message

    def test_detects_lambda_process_target(self):
        findings = lint(
            """
            import multiprocessing as mp
            def spawn():
                return mp.Process(target=lambda: None)
            """
        )
        assert codes(findings) == ["RPL005"]

    def test_allows_module_level_functions(self):
        findings = lint(
            """
            def work(x):
                return x + 1
            def run(pool, xs):
                return pool.map(work, [(x,) for x in xs])
            """
        )
        assert findings == []

    def test_builtin_map_is_not_a_sink(self):
        findings = lint(
            """
            def transform(xs):
                return list(map(lambda x: x + 1, xs))
            """
        )
        assert findings == []


class TestRPL006MutableModuleState:
    def test_detects_append_from_function(self):
        findings = lint(
            """
            _CACHE = []
            def remember(x):
                _CACHE.append(x)
            """,
            path=POOL_PATH,
        )
        assert codes(findings) == ["RPL006"]

    def test_detects_global_rebinding_and_subscript_write(self):
        findings = lint(
            """
            _TABLE = {}
            def reset():
                global _TABLE
                _TABLE = {}
            def put(k, v):
                _TABLE[k] = v
            """,
            path=POOL_PATH,
        )
        assert codes(findings) == ["RPL006", "RPL006"]

    def test_allows_read_only_module_constants(self):
        findings = lint(
            """
            _LIMITS = {"grid": 768}
            def limit(name):
                return _LIMITS[name]
            """,
            path=POOL_PATH,
        )
        assert findings == []

    def test_local_mutables_are_fine(self):
        findings = lint(
            """
            def collect(xs):
                acc = []
                for x in xs:
                    acc.append(x)
                return acc
            """,
            path=POOL_PATH,
        )
        assert findings == []


class TestRPL007ErrorTaxonomy:
    def test_detects_silent_swallow(self):
        findings = lint(
            """
            def risky(fn):
                try:
                    fn()
                except Exception:
                    pass
            """,
            path=POOL_PATH,
        )
        assert codes(findings) == ["RPL007"]
        assert "classify_error" in findings[0].message

    def test_detects_bare_raise_exception(self):
        findings = lint(
            """
            def fail():
                raise Exception("boom")
            """,
            path="src/repro/resilience/fixture.py",
        )
        assert codes(findings) == ["RPL007"]

    def test_allows_classified_handling(self):
        findings = lint(
            """
            from repro.gpusim.errors import classify_error
            def risky(fn, note):
                try:
                    fn()
                except Exception as exc:
                    note(classify_error(exc))
                    raise
            """,
            path=POOL_PATH,
        )
        assert findings == []

    def test_out_of_scope_paths_unchecked(self):
        findings = lint(
            """
            def risky(fn):
                try:
                    fn()
                except Exception:
                    pass
            """,
            path="src/repro/experiments/fixture.py",
        )
        assert findings == []


class TestRPL008BoundedBlocking:
    def test_detects_subprocess_run_without_timeout(self):
        findings = lint(
            """
            import subprocess
            def ship(cmd):
                return subprocess.run(cmd, check=True)
            """,
            path=POOL_PATH,
        )
        assert codes(findings) == ["RPL008"]

    def test_detects_unbounded_connection_wait(self):
        findings = lint(
            """
            from multiprocessing.connection import wait
            def drain(conns):
                return wait(conns)
            """,
            path=POOL_PATH,
        )
        assert codes(findings) == ["RPL008"]

    def test_detects_bare_recv_and_communicate(self):
        findings = lint(
            """
            def collect(conn, proc):
                out = proc.communicate()
                return conn.recv(), out
            """,
            path=POOL_PATH,
        )
        assert codes(findings) == ["RPL008", "RPL008"]

    def test_allows_bounded_calls(self):
        findings = lint(
            """
            import subprocess
            from multiprocessing.connection import wait
            def bounded(cmd, conns, proc, deadline):
                subprocess.run(cmd, timeout=deadline)
                wait(conns, deadline)
                proc.communicate(timeout=deadline)
            """,
            path=POOL_PATH,
        )
        assert findings == []


#: A path inside RPL009's default scope (the net transport modules).
NET_PATH = "src/repro/pool/net.py"


class TestRPL009TimeoutBoundedSockets:
    def test_detects_create_connection_without_timeout(self):
        findings = lint(
            """
            import socket
            def dial(address):
                return socket.create_connection(address)
            """,
            path=NET_PATH,
        )
        assert codes(findings) == ["RPL009"]
        assert "timeout=" in findings[0].message

    def test_detects_unarmed_raw_socket(self):
        findings = lint(
            """
            import socket
            def listen(port):
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                sock.bind(("", port))
                sock.listen(1)
                return sock
            """,
            path="src/repro/pool/agent.py",
        )
        assert codes(findings) == ["RPL009"]
        assert "never armed" in findings[0].message

    def test_detects_settimeout_none(self):
        findings = lint(
            """
            def disarm(sock):
                sock.settimeout(None)
            """,
            path="src/repro/pool/hosts.py",
        )
        assert codes(findings) == ["RPL009"]
        assert "disarms" in findings[0].message

    def test_allows_armed_sockets(self):
        findings = lint(
            """
            import socket
            def dial(address, connect_s, io_s):
                sock = socket.create_connection(address, timeout=connect_s)
                sock.settimeout(io_s)
                return sock

            def listen(port, accept_s):
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                sock.settimeout(accept_s)
                sock.bind(("", port))
                return sock
            """,
            path=NET_PATH,
        )
        assert findings == []

    def test_out_of_scope_paths_unchecked(self):
        findings = lint(
            """
            import socket
            def dial(address):
                return socket.create_connection(address)
            """,
            path=CORE_PATH,
        )
        assert findings == []


#: Paths inside RPL010's default scope (state-persisting trees).
SERVICE_PATH = "src/repro/service/fixture.py"
RESILIENCE_PATH = "src/repro/resilience/fixture.py"


class TestRPL010DurableStateWrites:
    def test_detects_bare_open_for_write(self):
        findings = lint(
            """
            def save(path, text):
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(text)
            """,
            path=SERVICE_PATH,
        )
        assert codes(findings) == ["RPL010"]
        assert "atomic_write_text" in findings[0].message

    def test_detects_bare_append_and_path_open(self):
        findings = lint(
            """
            def log(path, line):
                with open(path, "ab") as handle:
                    handle.write(line)

            def scribble(path, line):
                with path.open(mode="a") as handle:
                    handle.write(line)
            """,
            path=RESILIENCE_PATH,
        )
        assert codes(findings) == ["RPL010", "RPL010"]

    def test_detects_write_text_and_write_bytes(self):
        findings = lint(
            """
            def save(path, text, blob):
                path.write_text(text)
                path.write_bytes(blob)
            """,
            path=SERVICE_PATH,
        )
        assert codes(findings) == ["RPL010", "RPL010"]
        assert "not" in findings[0].message and "fsync" in findings[0].message

    def test_allows_reads_and_helper_calls(self):
        findings = lint(
            """
            from repro.resilience.atomic import (
                atomic_write_text,
                durable_append_text,
            )

            def roundtrip(path, text):
                atomic_write_text(path, text)
                durable_append_text(path, text)
                with open(path, "rb") as handle:
                    handle.read()
                with open(path) as handle:
                    return handle.read()
            """,
            path=SERVICE_PATH,
        )
        assert findings == []

    def test_dynamic_mode_and_os_open_not_flagged(self):
        # The rule only flags what it can prove: a computed mode string
        # and fd-level os.open (the helpers' own plumbing) pass.
        findings = lint(
            """
            import os

            def save(path, text, mode):
                with open(path, mode) as handle:
                    handle.write(text)
                os.open(path, os.O_RDONLY)
            """,
            path=RESILIENCE_PATH,
        )
        assert findings == []

    def test_inline_suppression_with_rationale(self):
        findings = lint(
            """
            def handshake(path, label):
                with open(path, "w") as handle:  # repro-lint: disable=RPL010 -- ephemeral handshake, not durable state
                    handle.write(label)
            """,
            path=SERVICE_PATH,
        )
        assert findings == []

    def test_out_of_scope_paths_unchecked(self):
        findings = lint(
            """
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
            path=CORE_PATH,
        )
        assert findings == []
