"""The runtime lock-order sanitizer (``repro.lint.sanitizer``).

The static fixture in ``test_lint_concurrency.py`` seeds a two-lock
inversion that RPL012 flags from the AST; here the *same shape* is
executed under instrumented locks and must raise at runtime — single
threaded, deterministically, before anything can actually deadlock.
Also covers the dispatcher shutdown contract: ``stop``/``drain`` never
hold a lock across ``Thread.join``.
"""

import threading
import time

import pytest

from repro.lint import sanitizer
from repro.lint.sanitizer import (
    HeldWhileBlockingError,
    LockInversionError,
    SanitizedCondition,
    SanitizedLock,
    SanitizedRLock,
)
from repro.service.queue import JobDispatcher


@pytest.fixture
def monitor():
    """A clean acquisition graph before and after each test."""
    sanitizer.monitor.reset()
    yield sanitizer.monitor
    sanitizer.monitor.reset()


@pytest.fixture
def sanitized(monitor):
    """The sanitizer installed over the service/pool modules.

    Under ``REPRO_TSAN=1`` the session fixture already installed it;
    then this is a no-op and teardown leaves it installed.
    """
    already = sanitizer.installed()
    if not already:
        sanitizer.install()
    yield sanitizer
    if not already:
        sanitizer.uninstall()


def make_locks(*labels):
    return tuple(
        SanitizedLock(threading.Lock(), label) for label in labels
    )


class TestLockOrder:
    def test_consistent_order_is_silent(self, monitor):
        a, b = make_locks("A", "B")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert (("A", "B")) in monitor.snapshot_edges()

    def test_seeded_inversion_raises(self, monitor):
        # The runtime twin of the RPL012 fixture: A->B observed, then
        # B->A attempted.  Single-threaded — the sanitizer turns a
        # deadlock-in-waiting into an immediate, located exception.
        a, b = make_locks("A", "B")
        with a:
            with b:
                pass
        with pytest.raises(LockInversionError) as excinfo:
            with b:
                with a:
                    pass
        message = str(excinfo.value)
        assert "lock-order inversion" in message
        assert "A" in message and "B" in message
        assert "first seen" in message

    def test_three_lock_cycle_detected_transitively(self, monitor):
        a, b, c = make_locks("A", "B", "C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with pytest.raises(LockInversionError):
            with c:
                with a:
                    pass

    def test_rlock_reentry_is_not_an_ordering(self, monitor):
        lock = SanitizedRLock(threading.RLock(), "R")
        with lock:
            with lock:
                pass
        assert monitor.snapshot_edges() == {}

    def test_trylock_failure_records_nothing(self, monitor):
        (a,) = make_locks("A")
        owner = threading.Thread(target=a._real.acquire)
        owner.start()
        owner.join()
        assert a.acquire(blocking=False) is False
        a._real.release()
        with a:
            pass

    def test_disjoint_threads_build_one_graph(self, monitor):
        # Thread 1 observes A->B; the main thread's B->A attempt must
        # still trip — orderings are global, not per-thread.
        a, b = make_locks("A", "B")

        def forward():
            with a:
                with b:
                    pass

        worker = threading.Thread(target=forward)
        worker.start()
        worker.join()
        with pytest.raises(LockInversionError):
            with b:
                with a:
                    pass


class TestHeldWhileBlocking:
    def test_join_under_lock_raises(self, monitor):
        (a,) = make_locks("A")
        worker = sanitizer._SanitizedThread(target=lambda: None)
        worker.start()
        with a:
            with pytest.raises(HeldWhileBlockingError) as excinfo:
                worker.join()
        assert "Thread.join" in str(excinfo.value)
        worker.join()

    def test_join_without_lock_is_silent(self, monitor):
        worker = sanitizer._SanitizedThread(target=lambda: None)
        worker.start()
        worker.join()

    def test_condition_wait_releases_the_hold(self, monitor):
        cond = SanitizedCondition(threading.Condition(), "CV")
        worker = sanitizer._SanitizedThread(target=lambda: None)
        worker.start()

        def check_then_wait():
            # Inside wait() the lock is released: a join here must not
            # count the condition as held.
            monitor.check_blocking("probe", "here")
            return True

        with cond:
            with pytest.raises(HeldWhileBlockingError):
                monitor.check_blocking("probe", "here")
            cond.wait_for(check_then_wait, timeout=1.0)
        worker.join()


class TestInstall:
    def test_install_wraps_service_locks(self, sanitized):
        import repro.service.jobs as jobs

        lock = jobs.threading.Lock()
        assert isinstance(lock, SanitizedLock)
        assert "jobs" not in type(jobs.threading.Event()).__module__

    def test_uninstall_restores_real_binding(self, monitor):
        if sanitizer.installed():
            pytest.skip("REPRO_TSAN session: leave instrumentation on")
        import repro.service.jobs as jobs

        sanitizer.install()
        sanitizer.uninstall()
        assert jobs.threading is threading

    def test_stdlib_threading_module_is_untouched(self, sanitized):
        assert not isinstance(threading.Lock(), SanitizedLock)


class TestDispatcherShutdown:
    """`stop`/`drain` never hold a lock across `Thread.join`."""

    @staticmethod
    def run_jobs(n, shutdown):
        done = []

        def runner(job, dispatch, seq):
            done.append((seq, job))

        dispatcher = JobDispatcher(runner=runner, workers=2, queue_cap=n)
        dispatcher.start()
        for i in range(n):
            assert dispatcher.try_enqueue(i)
        deadline = time.monotonic() + 10.0
        while len(done) < n and time.monotonic() < deadline:
            time.sleep(0.01)
        leaked = shutdown(dispatcher)
        assert leaked == 0
        assert dispatcher.alive_workers() == 0
        return sorted(done)

    def test_stop_holds_no_lock_across_join(self, sanitized):
        done = self.run_jobs(4, lambda d: d.stop())
        assert done == [(i, i) for i in range(4)]

    def test_drain_holds_no_lock_across_join(self, sanitized):
        done = self.run_jobs(4, lambda d: d.drain(grace_s=5.0))
        assert done == [(i, i) for i in range(4)]

    def test_instrumented_run_matches_uninstrumented(self, monitor):
        # The sanitizer observes; it must not change results.
        if sanitizer.installed():
            pytest.skip("REPRO_TSAN session: leave instrumentation on")
        plain = self.run_jobs(6, lambda d: d.stop())
        sanitizer.install()
        try:
            instrumented = self.run_jobs(6, lambda d: d.stop())
        finally:
            sanitizer.uninstall()
        assert instrumented == plain
