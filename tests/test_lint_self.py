"""The self-lint guard: ``repro lint src/`` must stay clean forever.

This is the teeth of the analyzer — it runs over the real tree under the
real ``pyproject.toml`` policy as part of tier-1, so any new global-state
RNG call, wall-clock read in a deterministic path, spawn-unpicklable pool
payload or unclassified error path fails the suite.  Fix the violation,
or record a *reasoned* exemption (inline ``-- rationale`` or a policy
``reason =``); rationale-less suppressions are themselves findings.
"""

from pathlib import Path

from repro.lint.engine import LintEngine
from repro.lint.policy import Policy

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_source_tree_is_lint_clean():
    engine = LintEngine(
        policy=Policy.load(REPO_ROOT),
        root=REPO_ROOT,
    )
    result = engine.lint_paths([REPO_ROOT / "src"])
    assert result.files_checked > 80  # the whole tree, not a subset
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.clean, (
        f"repro lint found violations in src/ — fix them or add a "
        f"reasoned exemption (docs/lint.md):\n{rendered}"
    )


def test_policy_loads_and_references_known_rules():
    # A broken [tool.repro-lint] table must fail loudly here, not only
    # when someone happens to run the CLI.
    policy = Policy.load(REPO_ROOT)
    # The two standing exemptions are deliberate and documented; keep
    # their reasons non-empty so the audit trail survives edits.
    for code, scope in policy.rules.items():
        if scope.exclude:
            assert scope.reason and scope.reason.strip(), (
                f"policy exemption for {code} lost its rationale"
            )
