"""Batched local-search descent over sequence neighborhoods."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.instances.biskup import biskup_instance
from repro.seqopt.batched import batched_cdd_objective
from repro.seqopt.exact import brute_force_cdd
from repro.seqopt.local_search import (
    adjacent_swap_neighbors,
    insertion_neighbors,
    local_search,
)
from tests.conftest import cdd_instances, ucddcp_instances


class TestNeighborhoods:
    def test_adjacent_count_and_validity(self, rng):
        seq = rng.permutation(10)
        nb = adjacent_swap_neighbors(seq)
        assert nb.shape == (9, 10)
        for row in nb:
            assert np.array_equal(np.sort(row), np.arange(10))
            assert (row != seq).sum() == 2

    def test_adjacent_single_job(self):
        nb = adjacent_swap_neighbors(np.array([0]))
        assert nb.shape == (1, 1)

    def test_adjacent_distinct(self, rng):
        seq = rng.permutation(8)
        nb = adjacent_swap_neighbors(seq)
        assert np.unique(nb, axis=0).shape[0] == 7

    def test_insertion_validity(self, rng):
        seq = rng.permutation(7)
        nb = insertion_neighbors(seq)
        for row in nb:
            assert np.array_equal(np.sort(row), np.arange(7))
        # The identity can reappear via equivalent moves but duplicates are
        # removed; there must be at least (n-1) genuine neighbors.
        assert nb.shape[0] >= 6

    def test_insertion_contains_all_adjacent_swaps(self, rng):
        seq = rng.permutation(6)
        adj = {tuple(r) for r in adjacent_swap_neighbors(seq)}
        ins = {tuple(r) for r in insertion_neighbors(seq)}
        assert adj <= ins


class TestDescent:
    def test_reaches_local_optimum(self, rng):
        inst = biskup_instance(15, 0.4, 1)
        res = local_search(inst, rng.permutation(15), "adjacent")
        # No adjacent swap improves the returned sequence.
        nb = adjacent_swap_neighbors(res.sequence)
        vals = batched_cdd_objective(inst, nb)
        assert vals.min() >= res.objective - 1e-9

    def test_never_worse_than_start(self, rng):
        inst = biskup_instance(20, 0.6, 2)
        start = rng.permutation(20)
        start_obj = batched_cdd_objective(inst, start[None, :])[0]
        res = local_search(inst, start, "adjacent")
        assert res.objective <= start_obj + 1e-9

    def test_insertion_at_least_as_good_as_adjacent(self, rng):
        inst = biskup_instance(12, 0.4, 3)
        start = rng.permutation(12)
        adj = local_search(inst, start, "adjacent")
        ins = local_search(inst, start, "insertion")
        assert ins.objective <= adj.objective + 1e-9

    def test_small_instance_reaches_optimum(self, paper_cdd):
        res = local_search(paper_cdd, np.arange(5), "insertion")
        assert res.objective == pytest.approx(
            brute_force_cdd(paper_cdd).objective
        )

    @given(inst=cdd_instances(min_n=2, max_n=7))
    def test_result_is_permutation(self, inst):
        res = local_search(inst, np.arange(inst.n), "adjacent")
        assert np.array_equal(np.sort(res.sequence), np.arange(inst.n))

    @given(inst=ucddcp_instances(min_n=2, max_n=6))
    def test_ucddcp_supported(self, inst):
        res = local_search(inst, np.arange(inst.n), "adjacent")
        assert res.objective >= 0

    def test_max_steps_respected(self, rng):
        inst = biskup_instance(30, 0.4, 1)
        res = local_search(inst, rng.permutation(30), "adjacent", max_steps=2)
        assert res.steps <= 2

    def test_unknown_neighborhood(self, paper_cdd):
        with pytest.raises(ValueError, match="neighborhood"):
            local_search(paper_cdd, np.arange(5), "tabu")

    def test_polishes_metaheuristic_result(self):
        # The hybrid use case: descend from a parallel-SA result.
        from repro.core.parallel_sa import ParallelSAConfig, parallel_sa

        inst = biskup_instance(40, 0.4, 1)
        sa = parallel_sa(
            inst, ParallelSAConfig(iterations=150, grid_size=2,
                                   block_size=32, seed=5)
        )
        polished = local_search(inst, sa.best_sequence, "adjacent")
        assert polished.objective <= sa.objective + 1e-9
