"""Network chaos drills: every net-fault kind, against stock agents, on
one- and two-host topologies — the pool must recover through the
supervision ladder and deliver identical results.

The faults are injected client-side (`NetFaultPlan` at the send path),
so what is being tested is the real recovery machinery: the agent's
integrity check and torn-frame handling, the client's heartbeat
deadline, reconnect backoff and requeue-on-link-failure."""

import warnings

import pytest

from repro.instances.biskup import biskup_instance
from repro.pool.agent import spawn_local_agent
from repro.pool.errors import (
    PayloadIntegrityError,
    PoisonTaskError,
    WorkerCrashError,
)
from repro.pool.faults import NET_FAULT_KINDS, NetFaultPlan, parse_net_fault
from repro.pool.hosts import HostPool
from repro.pool.net import HostSpec
from repro.pool.worker import solve_one

SOLVE_KW = dict(
    backend="vectorized", iterations=30, grid_size=2, block_size=32, seed=7
)
#: Tight ladder so blackhole silence trips within the test budget.
POOL_KW = dict(
    heartbeat_interval_s=0.1, heartbeat_timeout_s=0.6,
    backoff_base_s=0.02, backoff_max_s=0.2,
    connect_timeout_s=2.0, io_timeout_s=30.0,
)


@pytest.fixture(autouse=True)
def _quiet_oversubscription():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


@pytest.fixture(scope="module")
def agents():
    spawned = [spawn_local_agent(workers=2) for _ in range(2)]
    yield spawned
    for proc, _ in spawned:
        if proc.is_alive():
            proc.terminate()
        proc.join()


def _specs(agents, count):
    return [
        HostSpec(addr[0], addr[1], 2) for _, addr in agents[:count]
    ]


def _tasks(n=3):
    inst = biskup_instance(10, 0.4, 1)
    return [(solve_one, (inst, "parallel_sa", dict(SOLVE_KW)))] * n


def _run(pool, n=3):
    out = sorted(pool.imap_unordered(_tasks(n), labels=[f"t{i}" for i in range(n)]))
    assert [index for index, _, _ in out] == list(range(n))
    return out


class TestChaosMatrix:
    @pytest.mark.parametrize("kind", NET_FAULT_KINDS)
    @pytest.mark.parametrize("n_hosts", [1, 2])
    def test_recovers_with_identical_results(self, agents, kind, n_hosts):
        baseline = _run(HostPool(_specs(agents, n_hosts), **POOL_KW))
        plan = NetFaultPlan([parse_net_fault(f"{kind}:1")])
        chaotic = _run(HostPool(
            _specs(agents, n_hosts), task_retries=1, net_faults=plan,
            **POOL_KW,
        ))
        assert plan.fired, f"the {kind} fault never fired"
        assert all(status == "ok" for _, status, _ in chaotic)
        assert [
            (i, v.objective) for i, _, v in chaotic
        ] == [
            (i, v.objective) for i, _, v in baseline
        ]

    def test_fired_log_names_host_task_attempt(self, agents):
        plan = NetFaultPlan([parse_net_fault("delay:0")])
        _run(HostPool(
            _specs(agents, 1), task_retries=1, net_faults=plan, **POOL_KW
        ))
        (kind, host, task, attempt), = plan.fired
        assert kind == "delay"
        assert host == _specs(agents, 1)[0].label
        assert task == 0 and attempt == 1


class TestBudgetAccounting:
    def test_corrupt_frame_consumes_task_retries(self, agents):
        # corrupt-frame makes the agent report an integrity failure;
        # that is a *task* failure and must burn the retry budget.
        plan = NetFaultPlan([parse_net_fault("corrupt-frame:0")])
        out = _run(HostPool(
            _specs(agents, 1), task_retries=0, net_faults=plan, **POOL_KW
        ), n=1)
        (_, status, value), = out
        assert status == "error"
        assert isinstance(value, PayloadIntegrityError)

    def test_repeat_corruption_exhausts_budget_into_quarantine(self, agents):
        plan = NetFaultPlan([parse_net_fault("corrupt-frame:0:repeat")])
        out = _run(HostPool(
            _specs(agents, 1), task_retries=2, net_faults=plan, **POOL_KW
        ), n=1)
        (_, status, value), = out
        assert status == "error"
        assert isinstance(value, PoisonTaskError)
        report = value.report
        assert len(report.attempts) == 3
        label = _specs(agents, 1)[0].label
        assert report.host == label
        assert all(a.outcome == "integrity" for a in report.attempts)
        assert report.to_json()["hosts"] == [label]
        assert label in report.summary()

    def test_host_loss_reruns_are_free(self, agents):
        # disconnect tears the link, not the task: with task_retries=0
        # the re-run after reconnect must still succeed.
        plan = NetFaultPlan([parse_net_fault("disconnect:0")])
        out = _run(HostPool(
            _specs(agents, 1), task_retries=0, net_faults=plan, **POOL_KW
        ), n=2)
        assert plan.fired
        assert all(status == "ok" for _, status, _ in out)


class TestAgentSupervision:
    def test_agent_task_timeout_reported_as_worker_timeout(self):
        proc, addr = spawn_local_agent(workers=1, task_timeout=0.3)
        try:
            pool = HostPool([HostSpec(addr[0], addr[1], 1)], **POOL_KW)
            out = sorted(pool.imap_unordered(
                [(_sleep_forever, (30.0,))], labels=["hang"]
            ))
            (_, status, value), = out
            assert status == "error"
            assert "timed out" in str(value) or "deadline" in str(value)
        finally:
            proc.terminate()
            proc.join()

    def test_in_task_exception_travels_as_error_value(self, agents):
        pool = HostPool(_specs(agents, 1), **POOL_KW)
        out = sorted(pool.imap_unordered(
            [(_raise_value_error, ("boom",))], labels=["bad"]
        ))
        (_, status, value), = out
        assert status == "error"
        assert isinstance(value, ValueError)
        assert not isinstance(value, WorkerCrashError)
        assert str(value) == "boom"

    def test_child_crash_reported_with_host_and_exitcode(self, agents):
        pool = HostPool(_specs(agents, 1), **POOL_KW)
        out = sorted(pool.imap_unordered(
            [(_die_hard, (11,))], labels=["crash"]
        ))
        (_, status, value), = out
        assert status == "error"
        assert isinstance(value, WorkerCrashError)
        assert "died without reporting" in str(value)


def _sleep_forever(seconds):
    import time

    time.sleep(seconds)


def _raise_value_error(message):
    raise ValueError(message)


def _die_hard(code):
    import os

    os._exit(code)
