"""Wire-level tests for the distributed pool's framed protocol
(`repro.pool.net`): framing, integrity-before-deserialization, host
topology parsing, and the net-fault plan grammar."""

import socket

import pytest

from repro.pool.errors import FrameError, PayloadIntegrityError
from repro.pool.faults import (
    NET_FAULT_KINDS,
    NetFaultPlan,
    NetFaultSpec,
    parse_net_fault,
)
from repro.pool.net import (
    CONTROL_TASK_ID,
    DEFAULT_AGENT_PORT,
    FRAME_PING,
    FRAME_RESULT_OK,
    FRAME_TASK,
    FRAME_WELCOME,
    MAX_PAYLOAD_BYTES,
    HostSpec,
    encode_frame,
    format_host_specs,
    json_payload,
    parse_host_spec,
    parse_host_specs,
    read_frame,
    send_frame,
    send_json_frame,
)


@pytest.fixture
def pair():
    """A connected socket pair with armed timeouts (the RPL009 contract)."""
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    yield left, right
    left.close()
    right.close()


class TestFraming:
    def test_roundtrip_preserves_kind_task_id_payload(self, pair):
        left, right = pair
        send_frame(left, FRAME_TASK, b"payload-bytes", task_id=42)
        frame = read_frame(right)
        assert frame.kind == FRAME_TASK
        assert frame.task_id == 42
        assert frame.payload == b"payload-bytes"

    def test_empty_control_frame_roundtrip(self, pair):
        left, right = pair
        send_frame(left, FRAME_PING)
        frame = read_frame(right)
        assert frame.kind == FRAME_PING
        assert frame.task_id == CONTROL_TASK_ID
        assert frame.payload == b""
        assert frame.json() == {}

    def test_json_frame_roundtrip(self, pair):
        left, right = pair
        send_json_frame(left, FRAME_WELCOME, {"protocol": 1, "workers": 4})
        frame = read_frame(right)
        assert frame.json() == {"protocol": 1, "workers": 4}

    def test_clean_eof_returns_none(self, pair):
        left, right = pair
        left.close()
        assert read_frame(right) is None

    def test_back_to_back_frames_keep_boundaries(self, pair):
        left, right = pair
        send_frame(left, FRAME_TASK, b"first", task_id=1)
        send_frame(left, FRAME_TASK, b"second", task_id=2)
        assert read_frame(right).payload == b"first"
        assert read_frame(right).payload == b"second"


class TestFrameErrors:
    def test_bad_magic_raises_frame_error(self, pair):
        left, right = pair
        left.sendall(b"HTTP/1.1 200 OK\r\n" + b"\x00" * 64)
        with pytest.raises(FrameError, match="magic"):
            read_frame(right)

    def test_torn_frame_raises_frame_error(self, pair):
        left, right = pair
        blob = encode_frame(FRAME_TASK, b"x" * 100, task_id=3)
        left.sendall(blob[: len(blob) // 2])
        left.close()
        with pytest.raises(FrameError, match="mid-frame"):
            read_frame(right)

    def test_unknown_kind_raises_frame_error(self, pair):
        left, right = pair
        blob = bytearray(encode_frame(FRAME_TASK, b""))
        blob[4] = 200  # the kind byte
        left.sendall(bytes(blob))
        with pytest.raises(FrameError, match="kind"):
            read_frame(right)

    def test_oversize_length_field_fails_fast(self, pair):
        left, right = pair
        blob = encode_frame(FRAME_TASK, b"tiny", task_id=1)
        # Header layout !4sBIQ32s: length is the Q at offset 9.
        forged = blob[:9] + (MAX_PAYLOAD_BYTES + 1).to_bytes(8, "big") + blob[17:]
        left.sendall(forged)
        with pytest.raises(FrameError, match="protocol bound"):
            read_frame(right)

    def test_oversize_payload_rejected_at_encode(self):
        class HugeBytes(bytes):
            def __len__(self):
                return MAX_PAYLOAD_BYTES + 1

        with pytest.raises(ValueError, match="protocol bound"):
            encode_frame(FRAME_TASK, HugeBytes())

    def test_encode_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown frame kind"):
            encode_frame(99)


class TestIntegrity:
    def test_corrupt_payload_raises_integrity_error_with_task_id(self, pair):
        left, right = pair
        blob = encode_frame(FRAME_RESULT_OK, b"result-bytes", task_id=7)
        corrupted = blob[:-1] + bytes([blob[-1] ^ 0xFF])
        left.sendall(corrupted)
        with pytest.raises(PayloadIntegrityError) as excinfo:
            read_frame(right)
        # The frame boundary is intact, so the receiver can confine the
        # failure to this one task instead of dropping the connection.
        assert excinfo.value.task_id == 7
        send_frame(left, FRAME_PING)
        assert read_frame(right).kind == FRAME_PING

    def test_forwarded_digest_is_checked_end_to_end(self, pair):
        left, right = pair
        import hashlib

        payload = b"the-child-result"
        good = hashlib.sha256(payload).digest()
        send_frame(left, FRAME_RESULT_OK, payload, task_id=1, digest=good)
        assert read_frame(right).payload == payload
        send_frame(
            left, FRAME_RESULT_OK, payload, task_id=2,
            digest=hashlib.sha256(b"something else").digest(),
        )
        with pytest.raises(PayloadIntegrityError):
            read_frame(right)

    def test_json_payload_rejects_garbage(self):
        with pytest.raises(FrameError, match="undecodable"):
            json_payload(b"\xff\xfe not json")
        with pytest.raises(FrameError, match="JSON object"):
            json_payload(b"[1, 2, 3]")
        assert json_payload(b"") == {}


class TestHostSpecs:
    def test_two_part_spec_uses_default_port(self):
        spec = parse_host_spec("node1:4")
        assert spec == HostSpec("node1", DEFAULT_AGENT_PORT, 4)
        assert spec.label == f"node1:{DEFAULT_AGENT_PORT}"

    def test_three_part_spec_names_port(self):
        spec = parse_host_spec("localhost:7471:2")
        assert spec.address == ("localhost", 7471)
        assert spec.workers == 2

    @pytest.mark.parametrize(
        "text", ["", "host", "host:0:1", "host:70000:1", "host:1234:0",
                 "host:abc", "a:b:c:d"]
    )
    def test_malformed_specs_rejected(self, text):
        with pytest.raises(ValueError):
            parse_host_spec(text)

    def test_topology_roundtrips_through_format(self):
        specs = parse_host_specs("host1:4,host2:7471:8")
        assert format_host_specs(specs) == (
            f"host1:{DEFAULT_AGENT_PORT}:4,host2:7471:8"
        )
        assert parse_host_specs(format_host_specs(specs)) == specs

    def test_duplicate_endpoints_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_host_specs("host1:7000:4,host1:7000:8")

    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_host_specs(" , ")

    def test_same_host_different_ports_is_fine(self):
        specs = parse_host_specs("h:7000:1,h:7001:1")
        assert len(specs) == 2


class TestNetFaultGrammar:
    @pytest.mark.parametrize("kind", NET_FAULT_KINDS)
    def test_each_kind_parses(self, kind):
        spec = parse_net_fault(f"{kind}:3")
        assert spec == NetFaultSpec(kind=kind, task_index=3)
        assert not spec.repeat

    def test_repeat_flag(self):
        spec = parse_net_fault("disconnect:0:repeat")
        assert spec.repeat

    @pytest.mark.parametrize(
        "text",
        ["", "disconnect", "nosuch:1", "delay:-1", "delay:x",
         "delay:1:often", "delay:1:repeat:extra"],
    )
    def test_malformed_directives_rejected(self, text):
        with pytest.raises(ValueError):
            parse_net_fault(text)

    def test_plan_fires_once_per_task_by_default(self):
        plan = NetFaultPlan([parse_net_fault("corrupt-frame:2")])
        assert plan.directive("h:1", 2, attempt=1) == "corrupt-frame"
        assert plan.directive("h:1", 2, attempt=2) is None
        assert plan.directive("h:1", 1, attempt=1) is None
        assert plan.fired == [("corrupt-frame", "h:1", 2, 1)]

    def test_repeat_plan_fires_every_attempt(self):
        plan = NetFaultPlan([parse_net_fault("disconnect:0:repeat")])
        assert plan.directive("h:1", 0, attempt=1) == "disconnect"
        assert plan.directive("h:2", 0, attempt=2) == "disconnect"
        assert len(plan.fired) == 2
