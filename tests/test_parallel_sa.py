"""The GPU-parallel SA (asynchronous + synchronous variants)."""

import numpy as np
import pytest

from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.core.sa import SerialSAConfig, sa_serial
from repro.instances.biskup import biskup_instance
from repro.problems.validation import validate_schedule

FAST = dict(iterations=120, grid_size=2, block_size=32, seed=9)


class TestConfig:
    def test_population(self):
        assert ParallelSAConfig(grid_size=4, block_size=192).population == 768

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"iterations": 0},
            {"grid_size": 0},
            {"block_size": 0},
            {"pert_size": 1},
            {"position_refresh": 0},
            {"variant": "magic"},
            {"sync_segment_length": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ParallelSAConfig(**kwargs)

    def test_paper_defaults(self):
        cfg = ParallelSAConfig()
        assert cfg.grid_size == 4
        assert cfg.block_size == 192
        assert cfg.cooling_rate == 0.88
        assert cfg.pert_size == 4
        assert cfg.device_profile == "gt560m"
        assert cfg.device_spec is None
        assert cfg.resolve_device_spec().name == "GeForce GT 560M"


class TestAsyncSA:
    def test_deterministic_under_seed(self, paper_cdd):
        r1 = parallel_sa(paper_cdd, ParallelSAConfig(**FAST))
        r2 = parallel_sa(paper_cdd, ParallelSAConfig(**FAST))
        assert r1.objective == r2.objective
        assert np.array_equal(r1.best_sequence, r2.best_sequence)
        assert r1.modeled_device_time_s == r2.modeled_device_time_s

    def test_schedule_valid(self, paper_cdd):
        r = parallel_sa(paper_cdd, ParallelSAConfig(**FAST))
        validate_schedule(paper_cdd, r.schedule, require_no_idle=True)

    def test_finds_paper_example_optimum_region(self, paper_cdd):
        # 64 chains on a 5-job instance should find the global optimum
        # (brute force value) almost surely.
        from repro.seqopt.exact import brute_force_cdd

        r = parallel_sa(paper_cdd, ParallelSAConfig(**FAST))
        assert r.objective == pytest.approx(
            brute_force_cdd(paper_cdd).objective
        )

    def test_ensemble_beats_single_chain(self):
        inst = biskup_instance(20, 0.4, 1)
        par = parallel_sa(
            inst, ParallelSAConfig(iterations=300, grid_size=2,
                                   block_size=64, seed=4)
        )
        ser = sa_serial(inst, SerialSAConfig(iterations=300, seed=4))
        assert par.objective <= ser.objective

    def test_modeled_times_populated(self, paper_cdd):
        r = parallel_sa(paper_cdd, ParallelSAConfig(**FAST))
        assert r.modeled_device_time_s is not None
        assert r.modeled_kernel_time_s is not None
        assert r.modeled_memcpy_time_s is not None
        assert r.modeled_device_time_s > r.modeled_kernel_time_s

    def test_modeled_time_scales_with_iterations(self, paper_cdd):
        short = parallel_sa(
            paper_cdd, ParallelSAConfig(**{**FAST, "iterations": 60})
        )
        long = parallel_sa(
            paper_cdd, ParallelSAConfig(**{**FAST, "iterations": 300})
        )
        ratio = long.modeled_device_time_s / short.modeled_device_time_s
        assert 3.5 < ratio < 6.5  # ~5x for 5x iterations

    def test_history(self, paper_cdd):
        r = parallel_sa(
            paper_cdd,
            ParallelSAConfig(**{**FAST, "record_history": True}),
        )
        assert r.history is not None and len(r.history) == FAST["iterations"]
        assert np.all(np.diff(r.history) <= 0)
        assert r.history[-1] == r.objective

    def test_evaluations_counted(self, paper_cdd):
        r = parallel_sa(paper_cdd, ParallelSAConfig(**FAST))
        assert r.evaluations == (FAST["iterations"] + 1) * 64

    def test_explicit_t0(self, paper_cdd):
        r = parallel_sa(paper_cdd, ParallelSAConfig(**{**FAST, "t0": 3.0}))
        assert r.params["t0"] == 3.0

    def test_ucddcp(self, paper_ucddcp):
        r = parallel_sa(paper_ucddcp, ParallelSAConfig(**FAST))
        validate_schedule(paper_ucddcp, r.schedule, require_no_idle=True)
        # 64 chains on a 5-job instance: should be near the brute-force
        # optimum (75 for the best sequence).
        from repro.seqopt.exact import brute_force_ucddcp

        assert r.objective <= brute_force_ucddcp(paper_ucddcp).objective * 1.1

    def test_pert_clamped_to_n(self):
        inst = biskup_instance(3, 0.6, 1)
        r = parallel_sa(
            inst,
            ParallelSAConfig(iterations=50, grid_size=1, block_size=16,
                             seed=0, pert_size=4),
        )
        assert r.objective >= 0


class TestSyncSA:
    def test_runs_and_validates(self, paper_cdd):
        r = parallel_sa(
            paper_cdd, ParallelSAConfig(**{**FAST, "variant": "sync"})
        )
        validate_schedule(paper_cdd, r.schedule, require_no_idle=True)

    def test_variant_recorded(self, paper_cdd):
        r = parallel_sa(
            paper_cdd, ParallelSAConfig(**{**FAST, "variant": "sync"})
        )
        assert r.params["algorithm"] == "parallel_sa_sync"

    def test_sync_broadcast_collapses_population(self):
        # The defining mechanism of the synchronous variant (and the root of
        # the premature convergence the paper reports): at a segment
        # boundary every chain is reset to the reduced best state.
        from repro.core.parallel_sa import _make_broadcast_kernel
        from repro.gpusim.device import Device
        from repro.gpusim.launch import linear_config

        dev = Device(seed=0)
        pop, n = 32, 8
        seqs = dev.malloc((pop, n), np.int32)
        rng = np.random.default_rng(0)
        seqs.array[:] = np.argsort(rng.random((pop, n)), axis=1)
        energy = dev.malloc(pop, np.float64)
        energy.array[:] = rng.uniform(10, 50, pop)
        energy.array[13] = 1.0
        result = dev.malloc(2, np.float64)
        result.array[:] = [1.0, 13.0]
        best_row = seqs.array[13].copy()
        dev.launch(
            _make_broadcast_kernel(), linear_config(pop, 16),
            seqs, energy, result,
        )
        assert np.all(seqs.array == best_row)
        assert np.all(energy.array == 1.0)

    def test_sync_cools_per_segment(self, paper_cdd):
        # Sync cools once per segment, async once per iteration; both run
        # the same iteration count deterministically.
        base = {**FAST, "sync_segment_length": 5}
        a = parallel_sa(paper_cdd, ParallelSAConfig(**base))
        s = parallel_sa(
            paper_cdd, ParallelSAConfig(variant="sync", **base)
        )
        assert a.evaluations == s.evaluations


class TestFinalPolish:
    def test_polish_never_hurts(self):
        inst = biskup_instance(30, 0.6, 1)
        base = dict(iterations=120, grid_size=2, block_size=32, seed=8)
        plain = parallel_sa(inst, ParallelSAConfig(**base))
        polished = parallel_sa(
            inst, ParallelSAConfig(final_polish=True, **base)
        )
        assert polished.objective <= plain.objective + 1e-9

    def test_polish_counts_evaluations(self, paper_cdd):
        base = dict(iterations=50, grid_size=1, block_size=16, seed=8)
        plain = parallel_sa(paper_cdd, ParallelSAConfig(**base))
        polished = parallel_sa(
            paper_cdd, ParallelSAConfig(final_polish=True, **base)
        )
        assert polished.evaluations > plain.evaluations

    def test_polished_result_is_local_optimum(self):
        from repro.seqopt.batched import batched_cdd_objective
        from repro.seqopt.local_search import adjacent_swap_neighbors

        inst = biskup_instance(25, 0.4, 2)
        r = parallel_sa(
            inst,
            ParallelSAConfig(iterations=100, grid_size=1, block_size=32,
                             seed=3, final_polish=True),
        )
        nb = adjacent_swap_neighbors(r.best_sequence)
        assert batched_cdd_objective(inst, nb).min() >= r.objective - 1e-9
