"""Permutation operators: scalar and batched forms."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpusim.rng import DeviceRNG
from repro.permutation import (
    batched_one_point_crossover,
    batched_partial_fisher_yates,
    batched_random_swap,
    batched_sample_distinct,
    batched_two_point_crossover,
    one_point_crossover,
    partial_fisher_yates,
    random_swap,
    sample_distinct_positions,
    two_point_crossover,
)


def is_perm(arr: np.ndarray) -> bool:
    return np.array_equal(np.sort(np.asarray(arr)), np.arange(len(arr)))


def random_perm_matrix(s: int, n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.argsort(rng.random((s, n)), axis=1)


class TestScalarOperators:
    @given(n=st.integers(2, 30), seed=st.integers(0, 1000))
    def test_partial_fisher_yates_is_permutation(self, n, seed):
        rng = np.random.default_rng(seed)
        seq = rng.permutation(n)
        k = min(4, n)
        pos = sample_distinct_positions(rng, n, k)
        out = partial_fisher_yates(rng, seq, pos)
        assert is_perm(out)

    @given(n=st.integers(4, 30), seed=st.integers(0, 1000))
    def test_partial_fisher_yates_touches_only_positions(self, n, seed):
        rng = np.random.default_rng(seed)
        seq = rng.permutation(n)
        pos = sample_distinct_positions(rng, n, 3)
        out = partial_fisher_yates(rng, seq, pos)
        mask = np.ones(n, bool)
        mask[pos] = False
        assert np.array_equal(out[mask], seq[mask])

    def test_partial_fisher_yates_does_not_mutate_input(self, rng):
        seq = rng.permutation(10)
        before = seq.copy()
        partial_fisher_yates(rng, seq, np.array([0, 1, 2, 3]))
        assert np.array_equal(seq, before)

    @given(n=st.integers(2, 30), seed=st.integers(0, 500))
    def test_random_swap_swaps_exactly_two(self, n, seed):
        rng = np.random.default_rng(seed)
        seq = rng.permutation(n)
        out = random_swap(rng, seq)
        assert is_perm(out)
        assert (out != seq).sum() == 2

    def test_sample_distinct_guard(self, rng):
        with pytest.raises(ValueError):
            sample_distinct_positions(rng, 3, 4)

    @given(n=st.integers(2, 25), seed=st.integers(0, 500))
    def test_crossovers_produce_permutations(self, n, seed):
        rng = np.random.default_rng(seed)
        x, y = rng.permutation(n), rng.permutation(n)
        assert is_perm(one_point_crossover(rng, x, y))
        assert is_perm(two_point_crossover(rng, x, y))

    def test_one_point_preserves_prefix(self):
        rng = np.random.default_rng(0)
        x = np.arange(10)
        y = np.arange(10)[::-1].copy()
        child = one_point_crossover(rng, x, y)
        # Some prefix of x is preserved verbatim.
        c = 1
        while c < 10 and np.array_equal(child[:c], x[:c]):
            c += 1
        assert c > 1

    def test_crossover_with_identical_parents_is_identity(self, rng):
        x = rng.permutation(12)
        assert np.array_equal(one_point_crossover(rng, x, x), x)
        assert np.array_equal(two_point_crossover(rng, x, x), x)


class TestBatchedSampling:
    @given(n=st.integers(4, 40), k=st.integers(1, 4),
           seed=st.integers(0, 200))
    def test_distinct_positions(self, n, k, seed):
        drng = DeviceRNG(seed)
        pos = batched_sample_distinct(drng, np.arange(32), n, k)
        assert pos.shape == (32, k)
        assert np.all(pos >= 0) and np.all(pos < n)
        for row in pos:
            assert len(set(row.tolist())) == k

    def test_guard(self):
        with pytest.raises(ValueError):
            batched_sample_distinct(DeviceRNG(0), np.arange(4), 3, 5)

    def test_uniform_coverage(self):
        counts = np.zeros(10)
        for seed in range(40):
            pos = batched_sample_distinct(
                DeviceRNG(seed), np.arange(100), 10, 4
            )
            counts += np.bincount(pos.ravel(), minlength=10)
        assert counts.min() > 0.8 * counts.mean()


class TestBatchedFisherYates:
    @given(seed=st.integers(0, 300))
    def test_valid_permutations(self, seed):
        drng = DeviceRNG(seed)
        x = random_perm_matrix(24, 12, seed)
        pos = batched_sample_distinct(drng, np.arange(24), 12, 4)
        out = batched_partial_fisher_yates(drng, np.arange(24), x, pos)
        for row in out:
            assert is_perm(row)

    def test_untouched_positions_preserved(self):
        drng = DeviceRNG(5)
        x = random_perm_matrix(16, 10, 5)
        pos = batched_sample_distinct(drng, np.arange(16), 10, 3)
        out = batched_partial_fisher_yates(drng, np.arange(16), x, pos)
        mask = np.ones_like(x, bool)
        mask[np.arange(16)[:, None], pos] = False
        assert np.array_equal(out[mask], x[mask])

    def test_out_parameter(self):
        drng = DeviceRNG(6)
        x = random_perm_matrix(8, 6, 6)
        pos = batched_sample_distinct(drng, np.arange(8), 6, 2)
        dst = np.zeros_like(x)
        ret = batched_partial_fisher_yates(
            drng, np.arange(8), x, pos, out=dst
        )
        assert ret is dst
        for row in dst:
            assert is_perm(row)

    def test_input_not_mutated(self):
        drng = DeviceRNG(7)
        x = random_perm_matrix(8, 6, 7)
        before = x.copy()
        batched_partial_fisher_yates(
            drng, np.arange(8), x,
            batched_sample_distinct(drng, np.arange(8), 6, 3),
        )
        assert np.array_equal(x, before)


class TestBatchedSwapAndCrossovers:
    @given(seed=st.integers(0, 300), n=st.integers(2, 20))
    def test_swap_valid(self, seed, n):
        drng = DeviceRNG(seed)
        x = random_perm_matrix(16, n, seed)
        out = batched_random_swap(drng, np.arange(16), x)
        for row in out:
            assert is_perm(row)
        assert np.all((out != x).sum(axis=1) == 2)

    def test_swap_mask(self):
        drng = DeviceRNG(1)
        x = random_perm_matrix(10, 8, 1)
        mask = np.arange(10) % 2 == 0
        out = batched_random_swap(drng, np.arange(10), x, mask)
        for i in range(10):
            if mask[i]:
                assert (out[i] != x[i]).sum() == 2
            else:
                assert np.array_equal(out[i], x[i])

    @given(seed=st.integers(0, 300), n=st.integers(2, 20))
    def test_one_point_valid(self, seed, n):
        drng = DeviceRNG(seed)
        x = random_perm_matrix(16, n, seed)
        y = random_perm_matrix(16, n, seed + 999)
        out = batched_one_point_crossover(drng, np.arange(16), x, y)
        for row in out:
            assert is_perm(row)

    @given(seed=st.integers(0, 300), n=st.integers(2, 20))
    def test_two_point_valid(self, seed, n):
        drng = DeviceRNG(seed)
        x = random_perm_matrix(16, n, seed)
        y = random_perm_matrix(16, n, seed + 999)
        out = batched_two_point_crossover(drng, np.arange(16), x, y)
        for row in out:
            assert is_perm(row)

    def test_crossover_masks(self):
        drng = DeviceRNG(2)
        x = random_perm_matrix(12, 9, 2)
        y = random_perm_matrix(12, 9, 3)
        mask = np.zeros(12, bool)  # nobody crosses over
        out1 = batched_one_point_crossover(drng, np.arange(12), x, y, mask)
        out2 = batched_two_point_crossover(drng, np.arange(12), x, y, mask)
        assert np.array_equal(out1, x)
        assert np.array_equal(out2, x)

    def test_identical_parents_fixed_point(self):
        drng = DeviceRNG(3)
        x = random_perm_matrix(12, 9, 4)
        assert np.array_equal(
            batched_one_point_crossover(drng, np.arange(12), x, x), x
        )
        assert np.array_equal(
            batched_two_point_crossover(drng, np.arange(12), x, x), x
        )

    def test_batched_matches_scalar_semantics_n2(self):
        # With n=2 the one-point crossover must keep x (cut=1 keeps x[0],
        # tail is forced).
        drng = DeviceRNG(4)
        x = np.array([[0, 1], [1, 0]])
        y = np.array([[1, 0], [0, 1]])
        out = batched_one_point_crossover(drng, np.arange(2), x, y)
        assert np.array_equal(out, x)
