"""The process-pool subsystem: sharding bit-identity, batch isolation,
parallel work-unit runs, and the pool knob validation.

The headline contract (ISSUE/docs/parallel.md): for a fixed seed,
``backend="multiprocess"`` returns best fitness, best sequence and history
bit-identical to ``backend="vectorized"`` for any worker count.
"""

import multiprocessing as mp
import os
import signal
import time
import warnings

import numpy as np
import pytest

from repro.core.engine.backends import MultiprocessBackend, create_backend
from repro.core.engine.config import check_workers
from repro.core.solver import CDDSolver, UCDDCPSolver, solve_many, solver_for
from repro.core.threshold import ThresholdAcceptingConfig, threshold_accepting
from repro.instances.biskup import biskup_instance
from repro.instances.ucddcp_gen import ucddcp_instance
from repro.pool.executor import ProcessPool, WorkerCrashError
from repro.pool.sharding import plan_shards
from repro.resilience.runner import ResilientRunner, RetryPolicy, WorkUnit

SA_FAST = dict(iterations=60, grid_size=4, block_size=32, seed=7,
               record_history=True)
DPSO_FAST = dict(iterations=40, grid_size=4, block_size=32, seed=7,
                 record_history=True)


@pytest.fixture
def cdd():
    return biskup_instance(20, 0.4, 1)


@pytest.fixture
def ucd():
    return ucddcp_instance(10, 1)


def _solve_mp(solver, method, workers, **kw):
    """A multiprocess solve with the cpu-count warning silenced (the test
    container has one core; oversubscription is the point here)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return solver.solve(method, backend="multiprocess", workers=workers,
                            **kw)


class TestShardingDeterminism:
    """Same seed => identical best fitness/sequence/history, any workers."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sa_matches_vectorized(self, cdd, workers):
        ref = CDDSolver(cdd).solve("parallel_sa", backend="vectorized",
                                   **SA_FAST)
        r = _solve_mp(CDDSolver(cdd), "parallel_sa", workers, **SA_FAST)
        assert r.objective == ref.objective
        assert np.array_equal(r.best_sequence, ref.best_sequence)
        assert np.array_equal(r.history, ref.history)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_dpso_matches_vectorized(self, cdd, workers):
        ref = CDDSolver(cdd).solve("parallel_dpso", backend="vectorized",
                                   **DPSO_FAST)
        r = _solve_mp(CDDSolver(cdd), "parallel_dpso", workers, **DPSO_FAST)
        assert r.objective == ref.objective
        assert np.array_equal(r.best_sequence, ref.best_sequence)
        assert np.array_equal(r.history, ref.history)

    def test_sa_domain_variant_matches(self, cdd):
        kw = dict(SA_FAST, variant="domain")
        ref = CDDSolver(cdd).solve("parallel_sa", backend="vectorized", **kw)
        r = _solve_mp(CDDSolver(cdd), "parallel_sa", 2, **kw)
        assert r.objective == ref.objective
        assert np.array_equal(r.best_sequence, ref.best_sequence)
        assert np.array_equal(r.history, ref.history)

    def test_ucddcp_matches(self, ucd):
        ref = UCDDCPSolver(ucd).solve("parallel_sa", backend="vectorized",
                                      **SA_FAST)
        r = _solve_mp(UCDDCPSolver(ucd), "parallel_sa", 2, **SA_FAST)
        assert r.objective == ref.objective
        assert np.array_equal(r.best_sequence, ref.best_sequence)

    def test_matches_gpusim_too(self, cdd):
        # gpusim and vectorized are trajectory-identical, so multiprocess
        # must match the modeled device as well -- no timings though.
        ref = CDDSolver(cdd).solve("parallel_sa", backend="gpusim", **SA_FAST)
        r = _solve_mp(CDDSolver(cdd), "parallel_sa", 2, **SA_FAST)
        assert r.objective == ref.objective
        assert np.array_equal(r.best_sequence, ref.best_sequence)
        assert r.modeled_device_time_s is None

    def test_params_record_backend_and_workers(self, cdd):
        r = _solve_mp(CDDSolver(cdd), "parallel_sa", 2, **SA_FAST)
        assert r.params["backend"] == "multiprocess"
        assert r.params["workers"] == 2

    def test_spawn_context_matches(self, cdd):
        # Payloads are spawn-safe by design; run one shard plan under the
        # spawn start method to prove it.
        ref = CDDSolver(cdd).solve("parallel_sa", backend="vectorized",
                                   **SA_FAST)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            backend = MultiprocessBackend(workers=2, context="spawn")
            r = CDDSolver(cdd).solve("parallel_sa", backend=backend, **SA_FAST)
        assert r.objective == ref.objective
        assert np.array_equal(r.best_sequence, ref.best_sequence)


class TestUnshardableFallback:
    def test_sync_sa_warns_and_matches(self, cdd):
        kw = dict(SA_FAST, variant="sync")
        ref = CDDSolver(cdd).solve("parallel_sa", backend="vectorized", **kw)
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            r = CDDSolver(cdd).solve("parallel_sa", backend="multiprocess",
                                     workers=2, **kw)
        assert any("cannot be sharded" in str(w.message) for w in rec)
        assert r.objective == ref.objective
        assert np.array_equal(r.history, ref.history)
        assert r.params["workers"] == 1

    @pytest.mark.parametrize("coupling", ["ring", "coupled"])
    def test_coupled_dpso_falls_back(self, cdd, coupling):
        kw = dict(DPSO_FAST, coupling=coupling)
        ref = CDDSolver(cdd).solve("parallel_dpso", backend="vectorized", **kw)
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            r = CDDSolver(cdd).solve("parallel_dpso", backend="multiprocess",
                                     workers=2, **kw)
        assert any("cannot be sharded" in str(w.message) for w in rec)
        assert r.objective == ref.objective
        assert np.array_equal(r.best_sequence, ref.best_sequence)


class TestWorkersKnob:
    def test_workers_without_multiprocess_rejected(self, cdd):
        with pytest.raises(ValueError, match="multiprocess"):
            CDDSolver(cdd).solve("parallel_sa", backend="vectorized",
                                 workers=2, iterations=2, grid_size=1,
                                 block_size=4)

    def test_workers_alongside_backend_instance_rejected(self, cdd):
        with pytest.raises(ValueError, match="backend instance"):
            CDDSolver(cdd).solve(
                "parallel_sa", backend=MultiprocessBackend(), workers=2,
                iterations=2, grid_size=1, block_size=4,
            )

    def test_check_workers_validation(self):
        check_workers(None)
        check_workers(1)
        with pytest.raises(ValueError, match="workers must be >= 1"):
            check_workers(0)
        with pytest.raises(ValueError, match="workers must be >= 1"):
            check_workers(-3)
        ncpu = os.cpu_count() or 1
        with pytest.warns(RuntimeWarning, match="exceeds os.cpu_count"):
            check_workers(ncpu + 1)

    def test_backend_ctor_validates_workers(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            MultiprocessBackend(workers=0)

    def test_runner_ctor_validates_workers(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            ResilientRunner(workers=0)

    def test_create_backend_by_name(self):
        backend = create_backend("multiprocess")
        assert isinstance(backend, MultiprocessBackend)
        with pytest.raises(RuntimeError, match="never be called"):
            backend.synchronize()


class TestShardPlan:
    def test_even_split(self):
        plan = plan_shards(4, 32, workers=2)
        assert plan.blocks == (2, 2)
        assert plan.row_offsets == (0, 64)

    def test_uneven_split_front_loads(self):
        plan = plan_shards(5, 10, workers=2)
        assert plan.blocks == (3, 2)
        assert plan.row_offsets == (0, 30)

    def test_workers_capped_at_grid(self):
        plan = plan_shards(2, 16, workers=8)
        assert len(plan) == 2

    def test_unshardable_single_shard(self):
        with pytest.warns(RuntimeWarning, match="cannot be sharded"):
            plan = plan_shards(4, 32, workers=4, shardable=False,
                               algorithm="x")
        assert plan.blocks == (4,)
        assert plan.row_offsets == (0,)


class TestSolveMany:
    KW = dict(backend="vectorized", iterations=15, grid_size=2, block_size=8,
              seed=3)

    def test_results_in_input_order_and_match_serial(self):
        instances = [biskup_instance(10, h, 1) for h in (0.2, 0.4, 0.6)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            items = solve_many(instances, "parallel_sa", workers=2, **self.KW)
        assert [it.index for it in items] == [0, 1, 2]
        for inst, item in zip(instances, items):
            assert item.ok
            serial = solver_for(inst).solve("parallel_sa", **self.KW)
            assert item.result.objective == serial.objective
            assert np.array_equal(item.result.best_sequence,
                                  serial.best_sequence)

    def test_error_isolation(self):
        instances = [biskup_instance(10, 0.4, 1), object(),
                     biskup_instance(10, 0.6, 1)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            items = solve_many(instances, "parallel_sa", workers=2, **self.KW)
        assert [it.ok for it in items] == [True, False, True]
        bad = items[1]
        assert bad.error is not None
        assert bad.error.error_type == "TypeError"
        assert "no solver" in bad.error.error


class TestProcessPool:
    def test_worker_crash_is_isolated(self):
        pool = ProcessPool(workers=1)
        tasks = [(_crash_task, ()), (_ok_task, (5,))]
        results = dict()
        for index, status, value in pool.imap_unordered(tasks):
            results[index] = (status, value)
        assert results[0][0] == "error"
        assert isinstance(results[0][1], WorkerCrashError)
        assert results[1] == ("ok", 5)


def _crash_task():
    os.kill(os.getpid(), signal.SIGKILL)


def _ok_task(v):
    return v


class TestParallelRunUnits:
    def _runner(self, tmp_path, **kw):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return ResilientRunner(
                policy=RetryPolicy(max_retries=1, backoff_base_s=0.0,
                                   backoff_max_s=0.0),
                checkpoint_dir=tmp_path, **kw,
            )

    def test_outcomes_ordered_and_checkpointed(self, tmp_path):
        runner = self._runner(tmp_path, workers=2)
        units = [WorkUnit(key=f"u{i}", run=_unit_payload(i))
                 for i in range(5)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = runner.run_units(units, runner.checkpoint_for("study"))
        assert [o.key for o in report.outcomes] == [u.key for u in units]
        assert all(o.ok for o in report.outcomes)
        assert [o.payload["v"] for o in report.outcomes] == list(range(5))

    def test_failed_unit_does_not_crash_batch(self, tmp_path):
        runner = self._runner(tmp_path, workers=2)
        units = [
            WorkUnit(key="good", run=_unit_payload(1)),
            WorkUnit(key="bad", run=_unit_raises),
            WorkUnit(key="also_good", run=_unit_payload(2)),
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = runner.run_units(units, runner.checkpoint_for("study"))
        statuses = {o.key: o.status for o in report.outcomes}
        assert statuses == {"good": "ok", "bad": "failed", "also_good": "ok"}
        failed = [o for o in report.outcomes if o.status == "failed"][0]
        assert failed.error_kind == "fatal"
        assert "boom" in failed.error

    def test_interrupt_marks_rest_skipped(self, tmp_path):
        runner = self._runner(tmp_path, workers=1)
        units = [
            WorkUnit(key="done", run=_unit_payload(1)),
            WorkUnit(key="ctrlc", run=_unit_interrupts),
            WorkUnit(key="never", run=_unit_payload(3)),
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = runner.run_units(units, runner.checkpoint_for("study"))
        assert report.interrupted
        statuses = {o.key: o.status for o in report.outcomes}
        assert statuses == {"done": "ok", "ctrlc": "skipped",
                            "never": "skipped"}

    def test_kill_resume_replays_bit_identically(self, tmp_path):
        """Mid-batch interrupt with workers=2, then resume: checkpointed
        payloads replay verbatim and the final report matches a clean run."""
        units = [WorkUnit(key=f"u{i}", run=_unit_payload(i))
                 for i in range(4)] + [
            WorkUnit(key="ctrlc", run=_unit_interrupts)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            first = self._runner(tmp_path, workers=2)
            rep1 = first.run_units(units, first.checkpoint_for("study"))
            assert rep1.interrupted
            completed_keys = {o.key for o in rep1.completed}
            assert completed_keys  # something finished before the interrupt

            # "Resume": the interrupting unit now succeeds (the transient
            # condition cleared), everything checkpointed replays verbatim.
            resumed_units = units[:-1] + [
                WorkUnit(key="ctrlc", run=_unit_payload(99))]
            second = self._runner(tmp_path, workers=2, resume=True)
            rep2 = second.run_units(resumed_units,
                                    second.checkpoint_for("study"))
        assert not rep2.interrupted
        assert all(o.ok for o in rep2.outcomes)
        for o in rep2.outcomes:
            if o.key in completed_keys:
                assert o.from_checkpoint
        assert [o.payload["v"] for o in rep2.outcomes[:-1]] == list(range(4))

    def test_parallel_matches_serial_outcomes(self, tmp_path):
        units = [WorkUnit(key=f"u{i}", run=_unit_payload(i))
                 for i in range(6)]
        serial = ResilientRunner().run_units(units)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            parallel = ResilientRunner(workers=3).run_units(units)
        assert ([(o.key, o.status, o.payload) for o in serial.outcomes]
                == [(o.key, o.status, o.payload) for o in parallel.outcomes])

    def test_transient_retries_happen_inside_the_unit_process(self, tmp_path):
        # The whole retry loop runs in the child: a transient failure that
        # clears on the second attempt reports attempts=2.
        marker = tmp_path / "tries"
        unit = WorkUnit(key="flaky", run=_FlakyUnit(marker))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            runner = self._runner(tmp_path, workers=2)
            report = runner.run_units([unit, WorkUnit(key="pad",
                                                      run=_unit_payload(0))])
        flaky = report.outcomes[0]
        assert flaky.ok
        assert flaky.attempts == 2


def _unit_payload(v):
    def run():
        return {"v": v}
    return run


def _unit_raises():
    raise ValueError("boom")


def _unit_interrupts():
    # Give sibling workers a head start so at least one completes first.
    time.sleep(0.2)
    raise KeyboardInterrupt


class _FlakyUnit:
    """Fails with a transient device error once, then succeeds (the file
    marker survives across retry attempts inside one worker process)."""

    def __init__(self, marker):
        self.marker = marker

    def __call__(self):
        from repro.gpusim.errors import DeviceUnavailableError

        if not self.marker.exists():
            self.marker.write_text("tried")
            raise DeviceUnavailableError("first attempt fails")
        return {"v": "recovered"}


class TestBatchedTA:
    def test_walkers_one_is_default_and_deterministic(self, cdd):
        a = threshold_accepting(cdd, ThresholdAcceptingConfig(
            iterations=200, seed=5, record_history=True))
        b = threshold_accepting(cdd, ThresholdAcceptingConfig(
            iterations=200, seed=5, record_history=True, walkers=1))
        assert a.objective == b.objective
        assert np.array_equal(a.best_sequence, b.best_sequence)
        assert np.array_equal(a.history, b.history)

    def test_more_walkers_never_worse_start(self, cdd):
        # Walker 0 of a multi-walker run follows the single-walker
        # trajectory, so extra walkers can only improve the best.
        one = threshold_accepting(cdd, ThresholdAcceptingConfig(
            iterations=150, seed=5))
        many = threshold_accepting(cdd, ThresholdAcceptingConfig(
            iterations=150, seed=5, walkers=8))
        assert many.objective <= one.objective
        assert many.evaluations == 151 * 8

    def test_walkers_validated(self):
        with pytest.raises(ValueError, match="walkers"):
            ThresholdAcceptingConfig(walkers=0)

    def test_ucddcp_walkers(self, ucd):
        r = threshold_accepting(ucd, ThresholdAcceptingConfig(
            iterations=100, seed=2, walkers=4, record_history=True))
        assert r.history[-1] == r.objective
        assert np.all(np.diff(r.history) <= 0)


class TestForkSafety:
    def test_fork_start_method_available(self):
        # The parallel run_units mode inherits closures by fork; the
        # suite's platforms must provide it (Linux CI and dev boxes do).
        assert "fork" in mp.get_all_start_methods()
