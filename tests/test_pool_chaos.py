"""Transport chaos matrix: every pool fault kind at every pool width.

The headline robustness claim (ISSUE acceptance): for each fault kind in
{kill, hang, corrupt-payload} and each worker count in {1, 2, 4}, a
supervised pool absorbs a transient injection — the victim is retried,
every task yields its true value, and the surviving results are
bit-identical to an undisturbed run.  The CLI drill proves the same thing
end to end through ``repro solve --inject-pool-fault``.
"""

import io
import contextlib
import re
import warnings

import pytest

from repro.pool.executor import ProcessPool
from repro.pool.faults import POOL_FAULT_KINDS, PoolFaultPlan, PoolFaultSpec


def _square(v):
    return v * v


def _pool(**kw):
    """A ProcessPool with the 1-core oversubscription warning silenced
    (the test container has one CPU; multi-worker pools are the point)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return ProcessPool(**kw)


class TestChaosMatrix:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("kind", POOL_FAULT_KINDS)
    def test_transient_fault_absorbed(self, kind, workers):
        plan = PoolFaultPlan([PoolFaultSpec(kind, 1)])
        pool = _pool(workers=workers, task_retries=1,
                     task_timeout=5.0, fault_plan=plan)
        tasks = [(_square, (v,)) for v in range(5)]
        results = {i: (s, v) for i, s, v in pool.imap_unordered(tasks)}
        assert results == {i: ("ok", i * i) for i in range(5)}
        assert plan.fired == [(kind, 1, 1)]

    @pytest.mark.parametrize("kind", POOL_FAULT_KINDS)
    def test_repeat_fault_quarantines_only_the_victim(self, kind):
        from repro.pool.errors import PoisonTaskError

        plan = PoolFaultPlan([PoolFaultSpec(kind, 2, repeat=True)])
        pool = _pool(workers=2, task_retries=1, task_timeout=0.5,
                     fault_plan=plan)
        tasks = [(_square, (v,)) for v in range(4)]
        results = {i: (s, v) for i, s, v in pool.imap_unordered(tasks)}
        assert isinstance(results[2][1], PoisonTaskError)
        expected_outcome = {
            "kill": "crash", "hang": "timeout",
            "corrupt-payload": "integrity",
        }[kind]
        attempts = results[2][1].report.attempts
        assert [a.outcome for a in attempts] == [expected_outcome] * 2
        for i in (0, 1, 3):
            assert results[i] == ("ok", i * i)


class TestCliChaosDrill:
    """The operator-facing drill: inject, retry, identical answer."""

    ARGS = ["solve", "cdd", "-n", "10", "-m", "parallel_sa", "-i", "40",
            "--backend", "multiprocess", "--workers", "2",
            "--grid", "4", "--block", "8"]

    def _solve(self, *extra):
        from repro.cli import main

        buf = io.StringIO()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with contextlib.redirect_stdout(buf):
                rc = main(self.ARGS + list(extra))
        # Wall-clock is the one legitimately nondeterministic field.
        return rc, re.sub(r"\(wall [^)]*\)", "(wall -)", buf.getvalue())

    def test_injected_kill_retried_bit_identically(self):
        rc_clean, out_clean = self._solve()
        rc_chaos, out_chaos = self._solve(
            "--inject-pool-fault", "kill:1", "--task-retries", "1")
        assert rc_clean == rc_chaos == 0
        assert out_clean == out_chaos

    def test_supervision_flags_require_multiprocess(self, capsys):
        from repro.cli import main

        for extra in (["--task-timeout", "5"],
                      ["--inject-pool-fault", "kill:0"],
                      ["--task-retries", "2"]):
            rc = main(["solve", "cdd", "-n", "10", "-m", "parallel_sa",
                       "-i", "20"] + extra)
            assert rc == 2
            assert "requires --backend multiprocess" in capsys.readouterr().err

    def test_bad_pool_fault_spec_fails_fast(self, capsys):
        from repro.cli import main

        with pytest.raises(ValueError, match="pool fault"):
            main(self.ARGS + ["--inject-pool-fault", "teleport:1"])
