"""Pool supervision: the watchdog, in-pool retries, poison quarantine,
result integrity, and their wiring into solve_many and the runner.

The pool-level contracts under test (docs/parallel.md "Supervision &
chaos testing"):

* a task exceeding ``task_timeout`` is killed and surfaces as
  :class:`WorkerTimeoutError` while its siblings keep running;
* an abnormal attempt (crash/timeout/corrupt payload) is retried in a
  fresh child up to ``task_retries`` times; a task failing *every*
  attempt is quarantined with a structured :class:`PoisonTaskReport`;
* results cross the pipe as (pickle blob, sha256 digest) and a mismatch
  surfaces as :class:`PayloadIntegrityError` instead of a wrong answer.
"""

import json
import time
import warnings

import pytest

from repro.gpusim.errors import classify_error
from repro.pool.errors import (
    PayloadIntegrityError,
    PoisonTaskError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.pool.executor import ProcessPool
from repro.pool.faults import (
    POOL_FAULT_KINDS,
    PoolFaultPlan,
    PoolFaultSpec,
    parse_pool_fault,
)


def _pool(**kw):
    """A ProcessPool with the 1-core oversubscription warning silenced
    (the test container has one CPU; multi-worker pools are the point)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return ProcessPool(**kw)


# Module-level tasks: picklable under every start method (incl. spawn).
def _ok_task(v):
    return v


def _sleep_task(v):
    time.sleep(60)
    return v


class TestWatchdog:
    def test_hung_task_killed_sibling_unaffected(self):
        pool = _pool(workers=2, task_timeout=0.5)
        results = dict()
        start = time.monotonic()
        for index, status, value in pool.imap_unordered(
            [(_sleep_task, (1,)), (_ok_task, (2,))], labels=["hog", "quick"]
        ):
            results[index] = (status, value)
        elapsed = time.monotonic() - start
        assert results[1] == ("ok", 2)
        status, value = results[0]
        assert status == "error"
        assert isinstance(value, WorkerTimeoutError)
        assert "hog" in str(value) and "deadline" in str(value)
        # The hog was reaped at its deadline, not waited out (60s task).
        assert elapsed < 30

    def test_timeout_is_a_crash_subtype_and_transient(self):
        err = WorkerTimeoutError("x")
        assert isinstance(err, WorkerCrashError)
        assert classify_error(err) == "transient"

    def test_spawn_context_timeout(self):
        # Supervision must work under spawn too: deadlines are parent-side
        # state, never shipped through the child bootstrap.
        pool = ProcessPool(workers=1, context="spawn", task_timeout=1.0)
        [(index, status, value)] = list(
            pool.imap_unordered([(_sleep_task, (3,))])
        )
        assert status == "error"
        assert isinstance(value, WorkerTimeoutError)

    def test_hang_fault_retried_to_success(self):
        # The transient shape: the first attempt hangs, the watchdog reaps
        # it, the retry runs clean.
        plan = PoolFaultPlan([PoolFaultSpec("hang", 0)])
        pool = ProcessPool(workers=1, task_timeout=0.5, task_retries=1,
                           fault_plan=plan)
        assert list(pool.imap_unordered([(_ok_task, (7,))])) == [(0, "ok", 7)]
        assert plan.fired == [("hang", 0, 1)]

    def test_hang_fault_without_timeout_rejected(self):
        with pytest.raises(ValueError, match="task_timeout"):
            ProcessPool(fault_plan=PoolFaultPlan([PoolFaultSpec("hang", 0)]))

    def test_timeout_validated(self):
        with pytest.raises(ValueError, match="task_timeout"):
            ProcessPool(task_timeout=0.0)
        with pytest.raises(ValueError, match="task_retries"):
            ProcessPool(task_retries=-1)


class TestRetriesAndQuarantine:
    def test_transient_kill_retried_to_success(self):
        plan = PoolFaultPlan([PoolFaultSpec("kill", 0)])
        pool = ProcessPool(workers=1, task_retries=1, fault_plan=plan,
                           retry_delay=lambda attempt: 0.01)
        assert list(pool.imap_unordered([(_ok_task, (9,))])) == [(0, "ok", 9)]
        assert plan.fired == [("kill", 0, 1)]

    def test_poison_task_quarantined_after_k_failures(self):
        plan = PoolFaultPlan([PoolFaultSpec("kill", 0, repeat=True)])
        pool = ProcessPool(workers=1, task_retries=2, fault_plan=plan)
        [(index, status, value)] = list(
            pool.imap_unordered([(_ok_task, (9,))], labels=["victim"])
        )
        assert status == "error"
        assert isinstance(value, PoisonTaskError)
        report = value.report
        assert report.label == "victim"
        assert len(report.attempts) == 3
        assert [a.attempt for a in report.attempts] == [1, 2, 3]
        assert all(a.outcome == "crash" for a in report.attempts)
        # The injected kill exits with code 77: captured as evidence.
        assert all(a.exitcode == 77 for a in report.attempts)
        assert plan.fired == [("kill", 0, 1), ("kill", 0, 2), ("kill", 0, 3)]

    def test_poison_report_json_and_summary(self):
        plan = PoolFaultPlan([PoolFaultSpec("kill", 0, repeat=True)])
        pool = ProcessPool(workers=1, task_retries=1, fault_plan=plan)
        [(_, _, value)] = list(
            pool.imap_unordered([(_ok_task, (9,))], labels=["bad"])
        )
        blob = value.report.to_json()
        assert blob["label"] == "bad"
        assert blob["consecutive_failures"] == 2
        assert len(blob["attempts"]) == 2
        json.dumps(blob)  # serializable as-is
        assert "2 consecutive failed attempts" in str(value)

    def test_poison_is_fatal_not_transient(self):
        # Retrying a quarantined task is exactly what quarantine prevents.
        plan = PoolFaultPlan([PoolFaultSpec("kill", 0, repeat=True)])
        pool = ProcessPool(workers=1, task_retries=1, fault_plan=plan)
        [(_, _, value)] = list(pool.imap_unordered([(_ok_task, (9,))]))
        assert classify_error(value) == "fatal"

    def test_siblings_complete_while_task_is_quarantined(self):
        plan = PoolFaultPlan([PoolFaultSpec("kill", 1, repeat=True)])
        pool = _pool(workers=2, task_retries=2, fault_plan=plan)
        tasks = [(_ok_task, (i,)) for i in range(4)]
        results = {i: (s, v) for i, s, v in pool.imap_unordered(tasks)}
        assert results[0] == ("ok", 0)
        assert results[2] == ("ok", 2)
        assert results[3] == ("ok", 3)
        assert isinstance(results[1][1], PoisonTaskError)

    def test_zero_retries_surfaces_raw_error(self):
        # The pre-supervision contract: a single-attempt pool yields the
        # raw WorkerCrashError, never a PoisonTaskError wrapper.
        plan = PoolFaultPlan([PoolFaultSpec("kill", 0)])
        pool = ProcessPool(workers=1, fault_plan=plan)
        [(_, status, value)] = list(pool.imap_unordered([(_ok_task, (1,))]))
        assert status == "error"
        assert type(value) is WorkerCrashError

    def test_in_task_exception_is_not_retried(self):
        # Ordinary exceptions are the task's own result; retrying them
        # would burn the budget re-raising deterministically.
        pool = ProcessPool(workers=1, task_retries=3)
        [(_, status, value)] = list(
            pool.imap_unordered([(_raise_task, ())])
        )
        assert status == "error"
        assert isinstance(value, ValueError)
        assert "deliberate" in str(value)


class TestResultIntegrity:
    def test_corrupt_payload_detected(self):
        plan = PoolFaultPlan([PoolFaultSpec("corrupt-payload", 0)])
        pool = ProcessPool(workers=1, fault_plan=plan)
        [(_, status, value)] = list(
            pool.imap_unordered([(_ok_task, (11,))], labels=["flip"])
        )
        assert status == "error"
        assert isinstance(value, PayloadIntegrityError)
        assert "digest" in str(value) and "flip" in str(value)

    def test_corrupt_payload_retry_recovers_true_value(self):
        plan = PoolFaultPlan([PoolFaultSpec("corrupt-payload", 0)])
        pool = ProcessPool(workers=1, task_retries=1, fault_plan=plan)
        assert list(pool.imap_unordered([(_ok_task, (11,))])) == [
            (0, "ok", 11)
        ]

    def test_integrity_error_is_crash_subtype(self):
        assert issubclass(PayloadIntegrityError, WorkerCrashError)
        assert classify_error(PayloadIntegrityError("x")) == "transient"


class TestFaultPlanGrammar:
    def test_parse_simple(self):
        spec = parse_pool_fault("kill:1")
        assert (spec.kind, spec.task_index, spec.repeat) == ("kill", 1, False)

    def test_parse_repeat(self):
        spec = parse_pool_fault("corrupt-payload:2:repeat")
        assert (spec.kind, spec.task_index, spec.repeat) == (
            "corrupt-payload", 2, True)

    @pytest.mark.parametrize("bad", [
        "kill", "kill:x", "kill:1:always", "teleport:1", "kill:-1",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_pool_fault(bad)

    def test_spec_validates_kind_and_index(self):
        with pytest.raises(ValueError, match="pool fault kind"):
            PoolFaultSpec(kind="oom", task_index=0)
        with pytest.raises(ValueError, match=">= 0"):
            PoolFaultSpec(kind="kill", task_index=-2)
        assert set(POOL_FAULT_KINDS) == {"kill", "hang", "corrupt-payload"}

    def test_directive_fires_first_attempt_only_without_repeat(self):
        plan = PoolFaultPlan([PoolFaultSpec("kill", 3)])
        assert plan.directive(3, 1) == "kill"
        assert plan.directive(3, 2) is None
        assert plan.directive(2, 1) is None
        assert plan.fired == [("kill", 3, 1)]

    def test_labels_must_match_task_count(self):
        pool = ProcessPool(workers=1)
        with pytest.raises(ValueError, match="labels"):
            list(pool.imap_unordered([(_ok_task, (1,))], labels=["a", "b"]))


def _raise_task():
    raise ValueError("deliberate in-task failure")


class TestSolveManySupervision:
    """The batch facade degrades gracefully under injected pool faults."""

    KW = dict(backend="vectorized", iterations=15, grid_size=2, block_size=8,
              seed=3)

    def _instances(self):
        from repro.instances.biskup import biskup_instance

        return [biskup_instance(10, h, 1) for h in (0.2, 0.4, 0.6)]

    def _solve_many(self, **kw):
        from repro.core.solver import solve_many

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return solve_many(self._instances(), "parallel_sa", workers=2,
                              **self.KW, **kw)

    def test_crash_degrades_slot_with_structured_kind(self):
        items = self._solve_many(
            pool_faults=PoolFaultPlan([PoolFaultSpec("kill", 1)]))
        assert [it.ok for it in items] == [True, False, True]
        assert items[1].error.error_type == "worker_crash"

    def test_poison_slot_carries_quarantine_report(self):
        items = self._solve_many(
            task_retries=2,
            pool_faults=PoolFaultPlan([PoolFaultSpec("kill", 1, repeat=True)]),
        )
        assert [it.ok for it in items] == [True, False, True]
        error = items[1].error
        assert error.error_type == "poison_task"
        assert error.report["consecutive_failures"] == 3
        assert error.report["label"] == self._instances()[1].name

    def test_retried_batch_matches_clean_batch(self):
        clean = self._solve_many()
        chaotic = self._solve_many(
            task_retries=1,
            pool_faults=PoolFaultPlan([PoolFaultSpec("kill", 0)]))
        assert all(it.ok for it in chaotic)
        assert [c.result.objective for c in clean] == [
            c.result.objective for c in chaotic]


class TestRunnerQuarantine:
    """ResilientRunner persists poison reports for the CI artifact chain."""

    def _run(self, tmp_path, plan):
        from repro.resilience.runner import (
            ResilientRunner,
            RetryPolicy,
            WorkUnit,
        )

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            runner = ResilientRunner(
                policy=RetryPolicy(max_retries=2, backoff_base_s=0.0,
                                   backoff_max_s=0.0),
                checkpoint_dir=tmp_path, workers=2, pool_faults=plan,
            )
            units = [WorkUnit(key="poisoned/unit", run=_unit(0)),
                     WorkUnit(key="fine", run=_unit(1))]
            report = runner.run_units(units, runner.checkpoint_for("study"))
        return report

    def test_poisoned_unit_fails_run_continues(self, tmp_path):
        plan = PoolFaultPlan([PoolFaultSpec("kill", 0, repeat=True)])
        report = self._run(tmp_path, plan)
        statuses = {o.key: o.status for o in report.outcomes}
        assert statuses == {"poisoned/unit": "failed", "fine": "ok"}
        failed = report.outcomes[0]
        assert failed.error_kind == "fatal"
        assert failed.attempts == 3

    def test_quarantine_report_written_with_safe_name(self, tmp_path):
        plan = PoolFaultPlan([PoolFaultSpec("kill", 0, repeat=True)])
        self._run(tmp_path, plan)
        path = tmp_path / "quarantine" / "poisoned_unit.json"
        assert path.exists()
        blob = json.loads(path.read_text())
        assert blob["label"] == "poisoned/unit"
        assert blob["consecutive_failures"] == 3
        assert [a["outcome"] for a in blob["attempts"]] == ["crash"] * 3

    def test_transient_fault_leaves_no_quarantine(self, tmp_path):
        plan = PoolFaultPlan([PoolFaultSpec("kill", 0)])
        report = self._run(tmp_path, plan)
        assert all(o.ok for o in report.outcomes)
        assert not (tmp_path / "quarantine").exists()


def _unit(v):
    def run():
        return {"v": v}
    return run
