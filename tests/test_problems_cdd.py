"""Unit tests for the CDD problem definition."""

import numpy as np
import pytest
from hypothesis import given

from repro.problems.cdd import CDDInstance
from tests.conftest import cdd_instances


class TestConstruction:
    def test_basic_fields(self, paper_cdd):
        assert paper_cdd.n == 5
        assert paper_cdd.total_processing == 21.0
        assert paper_cdd.due_date == 16.0
        assert paper_cdd.is_restrictive

    def test_arrays_are_readonly(self, paper_cdd):
        with pytest.raises(ValueError):
            paper_cdd.processing[0] = 99.0

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            CDDInstance([1, 2], [1], [1, 2], 3.0)

    def test_rejects_nonpositive_processing(self):
        with pytest.raises(ValueError, match="strictly positive"):
            CDDInstance([1, 0], [1, 1], [1, 1], 3.0)

    def test_rejects_negative_penalty(self):
        with pytest.raises(ValueError, match="non-negative"):
            CDDInstance([1, 2], [-1, 1], [1, 1], 3.0)

    def test_rejects_negative_due_date(self):
        with pytest.raises(ValueError, match="due_date"):
            CDDInstance([1, 2], [1, 1], [1, 1], -1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            CDDInstance([1, np.nan], [1, 1], [1, 1], 3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one job"):
            CDDInstance([], [], [], 1.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            CDDInstance([[1, 2]], [[1, 1]], [[1, 1]], 3.0)

    def test_restriction_factor(self):
        inst = CDDInstance([10], [1], [1], 4.0)
        assert inst.restriction_factor == pytest.approx(0.4)
        assert inst.is_restrictive
        inst2 = CDDInstance([10], [1], [1], 12.0)
        assert not inst2.is_restrictive


class TestObjective:
    def test_earliness_tardiness_split(self, paper_cdd):
        c = np.array([11.0, 16.0, 18.0, 22.0, 26.0])
        e = paper_cdd.earliness(c)
        t = paper_cdd.tardiness(c)
        assert np.array_equal(e, [5, 0, 0, 0, 0])
        assert np.array_equal(t, [0, 0, 2, 6, 10])
        # Exactly one of E, T is nonzero per job.
        assert np.all(e * t == 0)

    def test_paper_value(self, paper_cdd):
        c = np.array([11.0, 16.0, 18.0, 22.0, 26.0])
        assert paper_cdd.objective(c) == 81.0

    def test_objective_shape_check(self, paper_cdd):
        with pytest.raises(ValueError, match="shape"):
            paper_cdd.objective(np.zeros(3))

    def test_objective_in_sequence_consistency(self, paper_cdd, rng):
        seq = rng.permutation(5)
        c_by_job = rng.uniform(1, 30, 5)
        by_job = paper_cdd.objective(c_by_job)
        by_seq = paper_cdd.objective_in_sequence(seq, c_by_job[seq])
        assert by_seq == pytest.approx(by_job)

    @given(inst=cdd_instances())
    def test_objective_nonnegative(self, inst):
        c = np.cumsum(inst.processing)
        assert inst.objective(c) >= 0.0

    @given(inst=cdd_instances())
    def test_all_jobs_at_due_date_only_counts_span(self, inst):
        # Completion exactly at d for every job: objective is zero.
        c = np.full(inst.n, inst.due_date)
        assert inst.objective(c) == 0.0


class TestSerialization:
    def test_round_trip(self, paper_cdd):
        data = paper_cdd.to_dict()
        back = CDDInstance.from_dict(data)
        assert back == paper_cdd

    def test_kind_check(self):
        with pytest.raises(ValueError, match="kind"):
            CDDInstance.from_dict({"kind": "other"})

    @given(inst=cdd_instances())
    def test_round_trip_random(self, inst):
        assert CDDInstance.from_dict(inst.to_dict()) == inst
