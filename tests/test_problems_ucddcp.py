"""Unit tests for the UCDDCP problem definition."""

import numpy as np
import pytest
from hypothesis import given

from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance
from tests.conftest import ucddcp_instances


class TestConstruction:
    def test_basic_fields(self, paper_ucddcp):
        assert paper_ucddcp.n == 5
        assert paper_ucddcp.due_date == 22.0
        assert np.array_equal(paper_ucddcp.max_reduction, [1, 0, 0, 1, 1])

    def test_rejects_restrictive_due_date(self):
        with pytest.raises(ValueError, match="unrestricted"):
            UCDDCPInstance([5, 5], [4, 4], [1, 1], [1, 1], [1, 1], 9.0)

    def test_accepts_due_date_equal_to_sum(self):
        inst = UCDDCPInstance([5, 5], [4, 4], [1, 1], [1, 1], [1, 1], 10.0)
        assert inst.due_date == 10.0

    def test_rejects_min_above_processing(self):
        with pytest.raises(ValueError, match="min_processing"):
            UCDDCPInstance([5], [6], [1], [1], [1], 10.0)

    def test_rejects_zero_min_processing(self):
        with pytest.raises(ValueError, match="minimum processing"):
            UCDDCPInstance([5], [0], [1], [1], [1], 10.0)

    def test_rejects_negative_gamma(self):
        with pytest.raises(ValueError, match="non-negative"):
            UCDDCPInstance([5], [4], [1], [1], [-1], 10.0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            UCDDCPInstance([5, 5], [4], [1, 1], [1, 1], [1, 1], 12.0)

    def test_arrays_readonly(self, paper_ucddcp):
        with pytest.raises(ValueError):
            paper_ucddcp.gamma[0] = 3.0


class TestObjective:
    def test_paper_value(self, paper_ucddcp):
        # Final schedule of Fig. 6: jobs 4 and 5 compressed by one unit,
        # job 2 completing at the due date d=22; objective 77.
        completion = np.array([17.0, 22.0, 24.0, 27.0, 30.0])
        reduction = np.array([0.0, 0.0, 0.0, 1.0, 1.0])
        assert paper_ucddcp.objective(completion, reduction) == 77.0

    def test_rejects_excess_reduction(self, paper_ucddcp):
        c = np.full(5, 22.0)
        x = np.array([2.0, 0, 0, 0, 0])  # max for job 1 is 1
        with pytest.raises(ValueError, match="reduction"):
            paper_ucddcp.objective(c, x)

    def test_rejects_negative_reduction(self, paper_ucddcp):
        c = np.full(5, 22.0)
        x = np.array([-1.0, 0, 0, 0, 0])
        with pytest.raises(ValueError, match="reduction"):
            paper_ucddcp.objective(c, x)

    @given(inst=ucddcp_instances())
    def test_zero_reduction_matches_cdd(self, inst):
        c = np.cumsum(inst.processing)
        x = np.zeros(inst.n)
        cdd = inst.relax_to_cdd()
        assert inst.objective(c, x) == pytest.approx(cdd.objective(c))

    @given(inst=ucddcp_instances())
    def test_compression_adds_gamma_cost(self, inst):
        c = np.full(inst.n, inst.due_date)
        x = inst.max_reduction
        expected = float(inst.gamma @ x)
        assert inst.objective(c, x) == pytest.approx(expected)


class TestRelaxation:
    def test_relax_to_cdd_fields(self, paper_ucddcp):
        cdd = paper_ucddcp.relax_to_cdd()
        assert isinstance(cdd, CDDInstance)
        assert np.array_equal(cdd.processing, paper_ucddcp.processing)
        assert np.array_equal(cdd.alpha, paper_ucddcp.alpha)
        assert np.array_equal(cdd.beta, paper_ucddcp.beta)
        assert cdd.due_date == paper_ucddcp.due_date
        assert not cdd.is_restrictive


class TestSerialization:
    def test_round_trip(self, paper_ucddcp):
        back = UCDDCPInstance.from_dict(paper_ucddcp.to_dict())
        assert back == paper_ucddcp

    def test_kind_check(self):
        with pytest.raises(ValueError, match="kind"):
            UCDDCPInstance.from_dict({"kind": "cdd"})

    @given(inst=ucddcp_instances())
    def test_round_trip_random(self, inst):
        assert UCDDCPInstance.from_dict(inst.to_dict()) == inst
