"""Pure-Python evaluators and the LP reference itself."""

import numpy as np
import pytest
from hypothesis import given

from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance
from repro.seqopt.cdd_linear import cdd_objective_for_sequence
from repro.seqopt.lp_reference import lp_optimize_sequence
from repro.seqopt.pure_python import cdd_objective_py, ucddcp_objective_py
from repro.seqopt.ucddcp_linear import ucddcp_objective_for_sequence
from tests.conftest import cdd_instances, ucddcp_instances


class TestPurePythonCDD:
    def test_paper_example(self, paper_cdd):
        obj = cdd_objective_py(
            paper_cdd.processing.tolist(),
            paper_cdd.alpha.tolist(),
            paper_cdd.beta.tolist(),
            paper_cdd.due_date,
            list(range(5)),
        )
        assert obj == 81.0

    @given(inst=cdd_instances(min_n=1, max_n=8))
    def test_matches_numpy(self, inst):
        rng = np.random.default_rng(inst.n)
        for _ in range(4):
            seq = rng.permutation(inst.n)
            py = cdd_objective_py(
                inst.processing.tolist(), inst.alpha.tolist(),
                inst.beta.tolist(), inst.due_date, seq.tolist(),
            )
            np_val = cdd_objective_for_sequence(inst, seq)
            assert py == pytest.approx(np_val)


class TestPurePythonUCDDCP:
    def test_paper_example(self, paper_ucddcp):
        obj = ucddcp_objective_py(
            paper_ucddcp.processing.tolist(),
            paper_ucddcp.min_processing.tolist(),
            paper_ucddcp.alpha.tolist(),
            paper_ucddcp.beta.tolist(),
            paper_ucddcp.gamma.tolist(),
            paper_ucddcp.due_date,
            list(range(5)),
        )
        assert obj == 77.0

    @given(inst=ucddcp_instances(min_n=1, max_n=8))
    def test_matches_numpy(self, inst):
        rng = np.random.default_rng(inst.n)
        for _ in range(4):
            seq = rng.permutation(inst.n)
            py = ucddcp_objective_py(
                inst.processing.tolist(), inst.min_processing.tolist(),
                inst.alpha.tolist(), inst.beta.tolist(),
                inst.gamma.tolist(), inst.due_date, seq.tolist(),
            )
            np_val = ucddcp_objective_for_sequence(inst, seq)
            assert py == pytest.approx(np_val)


class TestLPReference:
    def test_lp_result_fields(self, paper_cdd):
        res = lp_optimize_sequence(paper_cdd, np.arange(5))
        assert res.objective == pytest.approx(81.0)
        assert res.completion.shape == (5,)
        assert np.all(res.reduction == 0.0)  # CDD: X fixed to zero

    def test_lp_allows_idle_but_optimum_has_none(self):
        # Idle time is feasible in the LP; the optimum still has none.
        inst = CDDInstance([2, 3], [1, 4], [5, 5], 5.0)
        res = lp_optimize_sequence(inst, np.arange(2))
        starts = res.completion - inst.processing
        gaps = starts[1:] - res.completion[:-1]
        assert np.all(gaps <= 1e-6)

    def test_lp_honors_compression_bounds(self, paper_ucddcp):
        res = lp_optimize_sequence(paper_ucddcp, np.arange(5))
        ub = paper_ucddcp.max_reduction
        assert np.all(res.reduction <= ub + 1e-9)
        assert np.all(res.reduction >= -1e-9)

    def test_lp_completion_monotone(self, paper_ucddcp):
        res = lp_optimize_sequence(paper_ucddcp, np.arange(5))
        assert np.all(np.diff(res.completion) > 0)

    def test_lp_on_reversed_sequence(self, paper_cdd):
        res = lp_optimize_sequence(paper_cdd, np.arange(5)[::-1].copy())
        # Any sequence's LP optimum is >= the best sequence's optimum, and
        # positive for this restrictive instance.
        assert res.objective > 0

    def test_single_job_lp(self):
        inst = UCDDCPInstance([5], [3], [2], [4], [1], 10.0)
        res = lp_optimize_sequence(inst, np.array([0]))
        # Completing exactly at d with no compression costs nothing.
        assert res.objective == pytest.approx(0.0)


class TestLPEdgeCases:
    def test_all_zero_penalties(self):
        inst = CDDInstance([3, 4], [0, 0], [0, 0], 5.0)
        res = lp_optimize_sequence(inst, np.arange(2))
        assert res.objective == pytest.approx(0.0)

    def test_huge_values_stable(self):
        inst = CDDInstance([1000, 2000], [100, 50], [75, 25], 1500.0)
        from repro.seqopt.cdd_linear import optimize_cdd_sequence

        ours = optimize_cdd_sequence(inst, np.arange(2))
        lp = lp_optimize_sequence(inst, np.arange(2))
        assert ours.objective == pytest.approx(lp.objective, rel=1e-9)

    def test_full_compression_regime(self):
        # gamma = 0: compressing is free, every tardy/early-useful job
        # compresses fully; LP agrees.
        inst = UCDDCPInstance([6, 6, 6], [2, 2, 2], [5, 5, 5],
                              [5, 5, 5], [0, 0, 0], 20.0)
        from repro.seqopt.ucddcp_linear import optimize_ucddcp_sequence

        ours = optimize_ucddcp_sequence(inst, np.arange(3))
        lp = lp_optimize_sequence(inst, np.arange(3))
        assert ours.objective == pytest.approx(lp.objective, abs=1e-6)
