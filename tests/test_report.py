"""EXPERIMENTS.md assembly."""


from repro.experiments.report import RESULT_SECTIONS, build_report, write_report


class TestBuildReport:
    def test_all_sections_listed(self, tmp_path):
        text = build_report(tmp_path)
        for _, heading in RESULT_SECTIONS:
            assert heading in text

    def test_embeds_available_results(self, tmp_path):
        (tmp_path / "fig11_runtime_surface.txt").write_text("SURFACE DATA")
        text = build_report(tmp_path)
        assert "SURFACE DATA" in text

    def test_marks_missing_results(self, tmp_path):
        text = build_report(tmp_path)
        assert text.count("not yet generated") == len(RESULT_SECTIONS)

    def test_narrative_present(self, tmp_path):
        text = build_report(tmp_path)
        assert "reference strength" in text
        assert "matched-work" in text
        assert "Reproduction inventory" in text

    def test_write_report(self, tmp_path):
        out = write_report(tmp_path, tmp_path / "E.md")
        assert out.exists()
        assert out.read_text().startswith("# EXPERIMENTS")

    def test_sections_cover_every_published_table_and_figure(self):
        names = [n for n, _ in RESULT_SECTIONS]
        for required in ("table2", "table3", "table4", "table5", "fig11",
                         "fig12", "fig13", "fig14", "fig15", "fig16",
                         "fig17"):
            # Figures 12/13/15/17 are embedded inside their tables' reports.
            embedded = {"fig12": "table2", "fig13": "table3",
                        "fig15": "table4", "fig17": "table5"}
            key = embedded.get(required, required)
            assert any(key in n for n in names), required


class TestCsvExport:
    def test_deviation_csv(self, tmp_path, tmp_store_path):
        from repro.bestknown.store import BestKnownStore
        from repro.experiments.config import SCALES
        from repro.experiments.deviation import run_deviation_study
        from repro.experiments.export import (
            deviation_runs_csv,
            write_study_csvs,
        )

        study = run_deviation_study(
            "cdd", SCALES["smoke"], BestKnownStore(tmp_store_path)
        )
        text = deviation_runs_csv(study)
        lines = text.strip().splitlines()
        assert lines[0].startswith("instance,size,algorithm")
        assert len(lines) == 1 + len(study.runs)
        path = write_study_csvs(study, tmp_path)
        assert path.exists() and path.suffix == ".csv"

    def test_speedup_csv(self, tmp_path):
        from repro.experiments.config import SCALES
        from repro.experiments.export import (
            speedup_cells_csv,
            write_study_csvs,
        )
        from repro.experiments.speedup import run_speedup_study

        study = run_speedup_study("cdd", SCALES["smoke"], use_cache=True)
        text = speedup_cells_csv(study)
        lines = text.strip().splitlines()
        assert len(lines) == 1 + len(study.sizes) * 4
        path = write_study_csvs(study, tmp_path)
        assert "speedup_cells" in path.name
