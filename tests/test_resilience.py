"""The resilience layer: atomic writes, checkpoints, faults, the runner."""

import json

import pytest

from repro.gpusim.errors import (
    DeviceAllocationError,
    DeviceUnavailableError,
    InvalidLaunchError,
    LaunchTimeoutError,
)
from repro.resilience import (
    CheckpointStore,
    FaultPlan,
    FaultSpec,
    ResilientRunner,
    RetryPolicy,
    WorkUnit,
    atomic_write_text,
    classify_error,
    parse_fault,
    record_crc,
)


class TestAtomicWrite:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(path, "x")
        assert path.read_text() == "x"

    def test_no_temp_residue(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


class TestCheckpointStore:
    def test_append_and_reload(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = CheckpointStore(path)
        store.append("a", {"v": 1})
        store.append("b", {"v": 2}, attempts=3)

        reloaded = CheckpointStore(path)
        assert len(reloaded) == 2
        assert "a" in reloaded and "b" in reloaded
        assert reloaded.payload("a") == {"v": 1}
        assert reloaded.get("b")["attempts"] == 3
        assert list(reloaded.keys()) == ["a", "b"]

    def test_fresh_discards_existing(self, tmp_path):
        path = tmp_path / "s.jsonl"
        CheckpointStore(path).append("a", 1)
        fresh = CheckpointStore(path, fresh=True)
        assert len(fresh) == 0
        assert not path.exists()

    def test_missing_key_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.jsonl")
        assert store.get("nope") is None
        assert store.payload("nope") is None

    def test_tolerates_truncated_and_garbage_lines(self, tmp_path):
        path = tmp_path / "s.jsonl"
        good = json.dumps({"schema": 1, "key": "ok", "payload": 7})
        path.write_text(
            good + "\n"
            + '{"schema": 1, "key": "torn", "pay\n'  # truncated tail
            + "not json at all\n"
            + json.dumps({"schema": 1, "no_key": True}) + "\n"
        )
        store = CheckpointStore(path)
        assert len(store) == 1
        assert store.payload("ok") == 7
        assert store.skipped_lines == 3

    def test_file_is_one_json_record_per_line(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = CheckpointStore(path)
        store.append("k1", [1, 2])
        store.append("k2", "text")
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["key"] for r in records] == ["k1", "k2"]
        assert all(r["schema"] == 2 for r in records)
        assert all(r["crc"] == record_crc(r) for r in records)


class TestCheckpointIntegrity:
    """Schema-2 per-line CRC: bit rot is quarantined, never replayed."""

    def test_record_crc_ignores_key_order_and_crc_field(self):
        a = {"schema": 2, "key": "k", "payload": {"x": 1}, "attempts": 1}
        b = {"payload": {"x": 1}, "attempts": 1, "key": "k", "schema": 2,
             "crc": "deadbeef"}
        assert record_crc(a) == record_crc(b)
        assert len(record_crc(a)) == 8

    def test_corrupt_payload_line_quarantined(self, tmp_path):
        path = tmp_path / "s.jsonl"
        CheckpointStore(path).append("good", {"v": 1})
        store = CheckpointStore(path)
        store.append("rotten", {"v": 2})
        # Flip one payload character on disk: the stored CRC no longer
        # matches the canonical record text.
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1].replace('"v": 2', '"v": 3')
        path.write_text("\n".join(lines) + "\n")

        reloaded = CheckpointStore(path)
        assert "good" in reloaded
        assert "rotten" not in reloaded
        assert reloaded.skipped_lines == 1
        sidecar = reloaded.quarantine_path.read_text().splitlines()
        assert sidecar == [lines[-1]]

    def test_missing_crc_on_schema2_line_quarantined(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(
            json.dumps({"schema": 2, "key": "nocrc", "payload": 1}) + "\n"
        )
        store = CheckpointStore(path)
        assert len(store) == 0
        assert store.skipped_lines == 1

    def test_legacy_schema1_lines_still_accepted(self, tmp_path):
        # Pre-CRC checkpoints must keep resuming: schema-1 lines carry no
        # crc and are trusted as-is.
        path = tmp_path / "s.jsonl"
        path.write_text(
            json.dumps({"schema": 1, "key": "old", "payload": 42,
                        "attempts": 1}) + "\n"
        )
        store = CheckpointStore(path)
        assert store.payload("old") == 42
        assert store.skipped_lines == 0

    def test_resume_over_corrupt_last_line_is_bit_identical(self, tmp_path):
        """The acceptance drill: corrupt the checkpoint's last line, resume,
        and the final outcome payloads match a clean run exactly — the
        corrupt cell reruns, the intact cells replay verbatim."""
        import warnings

        units = [WorkUnit(key=f"u{i}", run=_payload_unit(i))
                 for i in range(4)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            first = ResilientRunner(checkpoint_dir=tmp_path, workers=2)
            clean = first.run_units(units, first.checkpoint_for("study"))
        assert all(o.ok for o in clean.outcomes)

        path = tmp_path / "study.jsonl"
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]  # torn tail write
        path.write_text("\n".join(lines) + "\n")

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            second = ResilientRunner(checkpoint_dir=tmp_path, workers=2,
                                     resume=True)
            resumed = second.run_units(units, second.checkpoint_for("study"))
        assert ([(o.key, o.status, o.payload) for o in resumed.outcomes]
                == [(o.key, o.status, o.payload) for o in clean.outcomes])
        replayed = [o.key for o in resumed.outcomes if o.from_checkpoint]
        assert len(replayed) == 3  # the torn cell was recomputed
        assert path.with_name("study.jsonl.quarantine").exists()


def _payload_unit(v):
    def run():
        return {"v": v}
    return run


class TestFaultSpecs:
    def test_bad_op_rejected(self):
        with pytest.raises(ValueError, match="fault op"):
            FaultSpec(op="teleport", at=1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultSpec(op="launch", at=1, kind="gamma_ray")

    def test_bad_index_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            FaultSpec(op="launch", at=0)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(op="launch", at=1, probability=0.0)

    def test_parse_fault(self):
        spec = parse_fault("launch:40:transient")
        assert (spec.op, spec.at, spec.kind, spec.repeat) == (
            "launch", 40, "transient", False
        )
        assert parse_fault("malloc:3:oom:repeat").repeat

    def test_parse_fault_rejects_malformed(self):
        for bad in ("launch", "launch:40", "launch:x:fatal",
                    "launch:40:fatal:forever"):
            with pytest.raises(ValueError):
                parse_fault(bad)

    def test_plan_fires_once_at_index(self):
        plan = FaultPlan([FaultSpec(op="launch", at=3, kind="fatal")])
        plan.record("launch")
        plan.record("launch")
        with pytest.raises(InvalidLaunchError):
            plan.record("launch")
        plan.record("launch")  # one-shot: index 4 passes
        assert plan.fired == [("launch", 3, "fatal")]
        assert plan.counts()["launch"] == 4

    def test_repeat_fires_forever(self):
        plan = FaultPlan(
            [FaultSpec(op="malloc", at=2, kind="oom", repeat=True)]
        )
        plan.record("malloc")
        for _ in range(3):
            with pytest.raises(DeviceAllocationError):
                plan.record("malloc")

    def test_counters_are_per_op(self):
        plan = FaultPlan([FaultSpec(op="launch", at=1, kind="fatal")])
        plan.record("malloc")  # does not advance the launch counter
        with pytest.raises(InvalidLaunchError):
            plan.record("launch")

    def test_probabilistic_plan_is_reproducible(self):
        def firings():
            plan = FaultPlan(
                [FaultSpec(op="launch", at=1, kind="transient",
                           repeat=True, probability=0.5)],
                seed=42,
            )
            out = []
            for i in range(20):
                try:
                    plan.record("launch")
                except DeviceUnavailableError:
                    out.append(i)
            return out

        first, second = firings(), firings()
        assert first == second
        assert 0 < len(first) < 20


class TestClassification:
    def test_transient_errors(self):
        assert classify_error(DeviceUnavailableError("x")) == "transient"
        assert classify_error(LaunchTimeoutError("x")) == "transient"

    def test_fatal_errors(self):
        assert classify_error(DeviceAllocationError("x")) == "fatal"
        assert classify_error(InvalidLaunchError("x")) == "fatal"
        assert classify_error(ValueError("x")) == "fatal"


class TestRetryPolicyValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    def test_zero_deadline_rejected(self):
        with pytest.raises(ValueError, match="unit_timeout_s"):
            RetryPolicy(unit_timeout_s=0.0)

    def test_bad_backoff_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.0)

    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0,
                             backoff_max_s=0.3)
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(5) == pytest.approx(0.3)  # capped


def _instant_runner(**kwargs):
    """A runner whose sleeps are recorded, not slept."""
    slept = []
    runner = ResilientRunner(sleep=slept.append, **kwargs)
    return runner, slept


class TestResilientRunner:
    def test_clean_units_all_complete(self):
        runner, _ = _instant_runner()
        report = runner.run_units(
            [WorkUnit(key=f"u{i}", run=lambda i=i: i * i) for i in range(4)]
        )
        assert [o.payload for o in report.completed] == [0, 1, 4, 9]
        assert not report.failed and not report.interrupted

    def test_transient_retried_with_backoff(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise DeviceUnavailableError("blip")
            return "done"

        runner, slept = _instant_runner(
            policy=RetryPolicy(max_retries=2, backoff_base_s=0.05,
                               backoff_factor=2.0, backoff_max_s=10.0)
        )
        report = runner.run_units([WorkUnit(key="u", run=flaky)])
        outcome = report.outcomes[0]
        assert outcome.ok and outcome.attempts == 3
        assert slept == pytest.approx([0.05, 0.1])  # deterministic backoff

    def test_transient_exhausts_retries(self):
        def always():
            raise LaunchTimeoutError("watchdog")

        runner, slept = _instant_runner(policy=RetryPolicy(max_retries=2))
        report = runner.run_units([WorkUnit(key="u", run=always)])
        outcome = report.outcomes[0]
        assert outcome.status == "failed"
        assert outcome.attempts == 3  # initial + 2 retries
        assert outcome.error_kind == "transient"
        assert len(slept) == 2

    def test_fatal_never_retried(self):
        def boom():
            raise InvalidLaunchError("bad geometry")

        runner, slept = _instant_runner(policy=RetryPolicy(max_retries=5))
        report = runner.run_units([WorkUnit(key="u", run=boom)])
        assert report.outcomes[0].attempts == 1
        assert report.outcomes[0].error_kind == "fatal"
        assert slept == []

    def test_deadline_bounds_transient_retries(self):
        clock = iter(range(100))

        def slow_transient():
            raise DeviceUnavailableError("blip")

        runner = ResilientRunner(
            policy=RetryPolicy(max_retries=50, unit_timeout_s=3.0),
            sleep=lambda s: None,
            clock=lambda: float(next(clock)),
        )
        report = runner.run_units([WorkUnit(key="u", run=slow_transient)])
        outcome = report.outcomes[0]
        assert outcome.status == "failed"
        assert "deadline" not in (outcome.error or "")
        assert outcome.attempts < 51  # stopped by time, not retry count

    def test_failure_does_not_stop_later_units(self):
        def boom():
            raise InvalidLaunchError("x")

        runner, _ = _instant_runner()
        report = runner.run_units([
            WorkUnit(key="bad", run=boom),
            WorkUnit(key="good", run=lambda: 42),
        ])
        assert [o.status for o in report.outcomes] == ["failed", "ok"]

    def test_interrupt_skips_remaining_units(self):
        ran = []

        def first():
            ran.append("first")
            return 1

        def ctrl_c():
            raise KeyboardInterrupt

        def never():
            ran.append("never")
            return 3

        runner, _ = _instant_runner()
        report = runner.run_units([
            WorkUnit(key="a", run=first),
            WorkUnit(key="b", run=ctrl_c),
            WorkUnit(key="c", run=never),
        ])
        assert report.interrupted and runner.interrupted
        assert ran == ["first"]
        assert [o.status for o in report.outcomes] == [
            "ok", "skipped", "skipped"
        ]
        assert "--resume" in report.footnote()

    def test_completed_units_checkpointed_and_restored(self, tmp_path):
        runner, _ = _instant_runner(checkpoint_dir=tmp_path)
        checkpoint = runner.checkpoint_for("study")
        runner.run_units(
            [WorkUnit(key="u", run=lambda: {"x": 1})], checkpoint
        )

        resumed, _ = _instant_runner(checkpoint_dir=tmp_path, resume=True)
        report = resumed.run_units(
            [WorkUnit(key="u", run=lambda: pytest.fail("recomputed"))],
            resumed.checkpoint_for("study"),
        )
        outcome = report.outcomes[0]
        assert outcome.ok and outcome.from_checkpoint
        assert outcome.payload == {"x": 1}

    def test_failed_units_not_checkpointed(self, tmp_path):
        def boom():
            raise InvalidLaunchError("x")

        runner, _ = _instant_runner(checkpoint_dir=tmp_path)
        checkpoint = runner.checkpoint_for("study")
        runner.run_units([WorkUnit(key="u", run=boom)], checkpoint)
        assert "u" not in checkpoint
        assert runner.failed_units and runner.failed_units[0].key == "u"

    def test_solver_backend_without_plan_is_name(self):
        runner, _ = _instant_runner()
        assert runner.solver_backend() == "gpusim"
        assert runner.solver_backend("vectorized") == "vectorized"

    def test_solver_backend_with_plan_carries_it(self):
        plan = FaultPlan([FaultSpec(op="launch", at=1)])
        runner, _ = _instant_runner(fault_plan=plan)
        backend = runner.solver_backend("vectorized")
        assert backend.fault_plan is plan

    def test_footnote_empty_on_clean_run(self):
        runner, _ = _instant_runner()
        report = runner.run_units([WorkUnit(key="u", run=lambda: 1)])
        assert report.footnote() == ""
