"""Result records, solver misc paths and small utilities."""

import numpy as np
import pytest

from repro.core.results import SolveResult
from repro.core.solver import CDDSolver, UCDDCPSolver
from repro.instances.biskup import biskup_instance
from repro.instances.ucddcp_gen import ucddcp_instance
from repro.problems.schedule import Schedule


def make_result(**kwargs):
    sched = Schedule(
        sequence=np.array([0, 1]),
        completion=np.array([1.0, 2.0]),
        reduction=np.zeros(2),
        objective=5.0,
    )
    base = dict(
        schedule=sched, objective=5.0, best_sequence=np.array([0, 1]),
        evaluations=10, wall_time_s=0.5,
    )
    base.update(kwargs)
    return SolveResult(**base)


class TestSolveResult:
    def test_summary_cpu_only(self):
        r = make_result()
        s = r.summary()
        assert "objective 5" in s
        assert "modeled GPU" not in s

    def test_summary_with_device_time(self):
        r = make_result(modeled_device_time_s=0.1)
        assert "modeled GPU 0.1000s" in r.summary()

    def test_params_default_empty(self):
        assert make_result().params == {}


class TestSolverMiscPaths:
    def test_parallel_methods_through_facade(self):
        inst = biskup_instance(10, 0.4, 1)
        solver = CDDSolver(inst)
        r1 = solver.solve("parallel_sa", iterations=40, grid_size=1,
                          block_size=16, seed=0)
        r2 = solver.solve("parallel_dpso", iterations=40, grid_size=1,
                          block_size=16, seed=0)
        assert r1.objective > 0 and r2.objective > 0

    def test_facade_passes_variant_options(self):
        inst = biskup_instance(10, 0.4, 1)
        r = CDDSolver(inst).solve(
            "parallel_sa", iterations=40, grid_size=1, block_size=16,
            seed=0, variant="sync",
        )
        assert r.params["algorithm"] == "parallel_sa_sync"

    def test_ucddcp_facade_all_serial_methods(self):
        inst = ucddcp_instance(8, 1)
        solver = UCDDCPSolver(inst)
        exact = solver.solve("exact")
        for method, kwargs in (
            ("serial_sa", {"iterations": 150}),
            ("serial_ta", {"iterations": 150}),
            ("serial_dpso", {"iterations": 30, "swarm_size": 8}),
            ("serial_es", {"generations": 20}),
        ):
            r = solver.solve(method, seed=2, **kwargs)
            assert r.objective >= exact.objective - 1e-9

    def test_bad_config_propagates(self):
        inst = biskup_instance(10, 0.4, 1)
        with pytest.raises(TypeError):
            CDDSolver(inst).solve("serial_sa", bogus_option=1)


class TestDeviceRepr:
    def test_spec_overrides_do_not_mutate_original(self):
        from repro.gpusim.device import GEFORCE_GT_560M

        derived = GEFORCE_GT_560M.with_overrides(num_sms=99)
        assert derived.num_sms == 99
        assert GEFORCE_GT_560M.num_sms == 4
        assert derived.total_cores == 99 * GEFORCE_GT_560M.cores_per_sm

    def test_instance_reprs(self):
        inst = biskup_instance(10, 0.4, 1)
        assert "n=10" in repr(inst)
        u = ucddcp_instance(10, 1)
        assert "UCDDCP" in repr(u)


class TestResultSerialization:
    def test_to_dict_json_round_trip(self):
        import json

        from repro.core.parallel_sa import ParallelSAConfig, parallel_sa

        inst = biskup_instance(10, 0.4, 1)
        r = parallel_sa(
            inst,
            ParallelSAConfig(iterations=30, grid_size=1, block_size=16,
                             seed=0, record_history=True),
        )
        data = json.loads(json.dumps(r.to_dict()))
        assert data["objective"] == r.objective
        assert data["best_sequence"] == r.best_sequence.tolist()
        assert len(data["history"]) == 30
        assert isinstance(data["params"]["algorithm"], str)

    def test_to_dict_cpu_only(self):
        r = make_result()
        d = r.to_dict()
        assert d["modeled_device_time_s"] is None
        assert d["history"] is None
