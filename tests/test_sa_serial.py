"""Serial SA baseline."""

import numpy as np
import pytest

from repro.core.sa import SerialSAConfig, sa_serial
from repro.problems.validation import validate_schedule
from repro.seqopt.batched import batched_cdd_objective


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = SerialSAConfig()
        assert cfg.cooling_rate == 0.88
        assert cfg.pert_size == 4
        assert cfg.t0_samples == 5000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"iterations": 0},
            {"pert_size": 1},
            {"position_refresh": 0},
            {"backend": "fortran"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SerialSAConfig(**kwargs)


class TestSerialSA:
    def test_deterministic_under_seed(self, paper_cdd):
        cfg = SerialSAConfig(iterations=300, seed=5)
        r1 = sa_serial(paper_cdd, cfg)
        r2 = sa_serial(paper_cdd, cfg)
        assert r1.objective == r2.objective
        assert np.array_equal(r1.best_sequence, r2.best_sequence)

    def test_seed_changes_trajectory(self, paper_cdd):
        r1 = sa_serial(paper_cdd, SerialSAConfig(iterations=50, seed=1))
        r2 = sa_serial(paper_cdd, SerialSAConfig(iterations=50, seed=2))
        assert not np.array_equal(r1.best_sequence, r2.best_sequence) or (
            r1.objective == r2.objective
        )

    def test_result_schedule_is_valid(self, paper_cdd):
        r = sa_serial(paper_cdd, SerialSAConfig(iterations=200, seed=0))
        validate_schedule(paper_cdd, r.schedule, require_no_idle=True)

    def test_beats_average_random_sequence(self, paper_cdd, rng):
        r = sa_serial(paper_cdd, SerialSAConfig(iterations=500, seed=0))
        random_seqs = np.argsort(rng.random((200, 5)), axis=1)
        mean_random = batched_cdd_objective(paper_cdd, random_seqs).mean()
        assert r.objective < mean_random

    def test_python_backend_equivalent_quality(self, paper_cdd):
        # Identical seeds must give identical search trajectories across
        # backends (the evaluators agree exactly).
        a = sa_serial(
            paper_cdd, SerialSAConfig(iterations=200, seed=3, backend="numpy")
        )
        b = sa_serial(
            paper_cdd, SerialSAConfig(iterations=200, seed=3, backend="python")
        )
        assert a.objective == b.objective
        assert np.array_equal(a.best_sequence, b.best_sequence)

    def test_history_recorded_and_monotone(self, paper_cdd):
        r = sa_serial(
            paper_cdd,
            SerialSAConfig(iterations=150, seed=0, record_history=True),
        )
        assert r.history is not None and len(r.history) == 150
        assert np.all(np.diff(r.history) <= 0)  # best-so-far is monotone
        assert r.history[-1] == r.objective

    def test_history_none_by_default(self, paper_cdd):
        r = sa_serial(paper_cdd, SerialSAConfig(iterations=20, seed=0))
        assert r.history is None

    def test_explicit_t0_respected(self, paper_cdd):
        r = sa_serial(paper_cdd, SerialSAConfig(iterations=20, seed=0, t0=5.0))
        assert r.params["t0"] == 5.0

    def test_ucddcp_supported(self, paper_ucddcp):
        r = sa_serial(paper_ucddcp, SerialSAConfig(iterations=300, seed=0))
        validate_schedule(paper_ucddcp, r.schedule, require_no_idle=True)
        # The known optimum for the identity sequence is 77; SA explores
        # sequences so it must do at least as well as a random start.
        assert r.objective <= 150

    def test_evaluation_count(self, paper_cdd):
        r = sa_serial(paper_cdd, SerialSAConfig(iterations=123, seed=0))
        assert r.evaluations == 124

    def test_small_n_with_pert_clamp(self):
        from repro.problems.cdd import CDDInstance

        inst = CDDInstance([3, 4], [1, 2], [2, 1], 4.0)
        r = sa_serial(inst, SerialSAConfig(iterations=50, seed=0, pert_size=4))
        assert r.objective >= 0
