"""Unit tests for Schedule and the validation layer."""

import numpy as np
import pytest

from repro.problems.cdd import CDDInstance
from repro.problems.schedule import Schedule
from repro.problems.ucddcp import UCDDCPInstance
from repro.problems.validation import (
    ScheduleError,
    check_permutation,
    validate_schedule,
)


def make_schedule(seq, completion, reduction=None, objective=0.0):
    seq = np.asarray(seq)
    completion = np.asarray(completion, float)
    if reduction is None:
        reduction = np.zeros_like(completion)
    return Schedule(sequence=seq, completion=completion,
                    reduction=np.asarray(reduction, float),
                    objective=objective)


class TestSchedule:
    def test_order_conversions(self):
        s = make_schedule([2, 0, 1], [3.0, 7.0, 9.0])
        by_job = s.completion_by_job()
        assert by_job[2] == 3.0 and by_job[0] == 7.0 and by_job[1] == 9.0

    def test_reduction_by_job(self):
        s = make_schedule([1, 0], [3.0, 5.0], [0.5, 0.0])
        assert np.array_equal(s.reduction_by_job(), [0.0, 0.5])

    def test_start_times_and_gaps(self):
        # jobs of length 3 and 2; completions 3 and 6 -> 1 unit idle.
        s = make_schedule([0, 1], [3.0, 6.0])
        starts = s.start_times(np.array([3.0, 2.0]))
        assert np.array_equal(starts, [0.0, 4.0])
        gaps = s.idle_gaps(np.array([3.0, 2.0]))
        assert np.array_equal(gaps, [0.0, 1.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            Schedule(np.array([0, 1]), np.array([1.0]), np.zeros(2), 0.0)

    def test_describe_mentions_objective(self):
        s = make_schedule([0], [1.0], objective=42.0)
        assert "42" in s.describe()

    def test_n(self):
        assert make_schedule([0, 1, 2], [1.0, 2.0, 3.0]).n == 3


class TestCheckPermutation:
    def test_accepts_valid(self):
        check_permutation(np.array([2, 0, 1]))

    def test_rejects_duplicate(self):
        with pytest.raises(ScheduleError, match="permutation"):
            check_permutation(np.array([0, 0, 1]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ScheduleError, match="permutation"):
            check_permutation(np.array([1, 2, 3]))

    def test_rejects_float_dtype(self):
        with pytest.raises(ScheduleError, match="integral"):
            check_permutation(np.array([0.0, 1.0]))

    def test_rejects_wrong_length(self):
        with pytest.raises(ScheduleError, match="length"):
            check_permutation(np.array([0, 1]), n=3)

    def test_rejects_2d(self):
        with pytest.raises(ScheduleError, match="1-D"):
            check_permutation(np.array([[0, 1]]))


class TestValidateSchedule:
    @pytest.fixture()
    def inst(self):
        return CDDInstance([3, 2], [1, 1], [2, 2], 4.0)

    def test_valid_schedule_passes(self, inst):
        # seq (0,1): C = (3,5); obj = 1*1 + 2*1 = 3
        s = make_schedule([0, 1], [3.0, 5.0], objective=3.0)
        validate_schedule(inst, s, require_no_idle=True)

    def test_detects_overlap(self, inst):
        s = make_schedule([0, 1], [3.0, 4.0], objective=1.0 + 0.0)
        with pytest.raises(ScheduleError, match="overlap"):
            validate_schedule(inst, s)

    def test_detects_negative_start(self, inst):
        s = make_schedule([0, 1], [2.0, 4.0], objective=2 * 1.0)
        with pytest.raises(ScheduleError, match="before time zero"):
            validate_schedule(inst, s)

    def test_detects_idle_when_required(self, inst):
        s = make_schedule([0, 1], [3.0, 6.0], objective=1.0 + 2 * 2.0)
        validate_schedule(inst, s)  # idle allowed by default
        with pytest.raises(ScheduleError, match="idle"):
            validate_schedule(inst, s, require_no_idle=True)

    def test_detects_objective_mismatch(self, inst):
        s = make_schedule([0, 1], [3.0, 5.0], objective=999.0)
        with pytest.raises(ScheduleError, match="objective mismatch"):
            validate_schedule(inst, s)

    def test_detects_compression_on_cdd(self, inst):
        s = make_schedule([0, 1], [3.0, 5.0], [1.0, 0.0], objective=3.0)
        with pytest.raises(ScheduleError, match="compress"):
            validate_schedule(inst, s)

    def test_ucddcp_reduction_bounds(self):
        inst = UCDDCPInstance([3, 2], [2, 1], [1, 1], [2, 2], [1, 1], 6.0)
        # Reduce job 0 by 2 > max 1.
        s = make_schedule([0, 1], [1.0, 3.0], [2.0, 0.0], objective=0.0)
        with pytest.raises(ScheduleError, match="P_i - M_i"):
            validate_schedule(inst, s)

    def test_ucddcp_valid_with_reduction(self):
        inst = UCDDCPInstance([3, 2], [2, 1], [1, 1], [2, 2], [1, 1], 6.0)
        # seq (0,1), X=(1,0): effective p=(2,2), completions (4,6):
        # E_0 = 2 -> 2; job 1 on time; compression cost 1 -> total 3.
        s = make_schedule([0, 1], [4.0, 6.0], [1.0, 0.0], objective=3.0)
        validate_schedule(inst, s, require_no_idle=True)
