"""The scheduling service: admission, queue, HTTP API, fault isolation."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.core.solver import solver_for
from repro.instances import biskup_instance
from repro.pool.faults import PoolFaultPlan, parse_pool_fault
from repro.service.admission import (
    AdmissionPolicy,
    ValidationError,
    validate_request,
)
from repro.service.api import SchedulingService, _render, make_server
from repro.service.cache import ResultCache

POLICY = AdmissionPolicy()


@pytest.fixture
def instance():
    return biskup_instance(n=8, h=0.4, k=1)


@pytest.fixture
def body(instance):
    return {
        "instance": instance.to_dict(),
        "method": "serial_sa",
        "config": {"iterations": 60, "seed": 5},
    }


def wait_for(predicate, timeout=30.0, tick=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(tick)
    return False


def wait_state(service, job_id, states=("done", "failed"), timeout=30.0):
    assert wait_for(
        lambda: service.registry.status(job_id)["state"] in states,
        timeout=timeout,
    ), service.registry.status(job_id)
    return service.registry.status(job_id)


@pytest.fixture
def service(tmp_path):
    svc = SchedulingService(
        policy=AdmissionPolicy(queue_cap=4),
        workers=1,
        cache=ResultCache(tmp_path / "cache"),
    )
    svc.start()
    yield svc
    svc.stop()


class TestValidation:
    def test_rejects_non_object_bodies(self):
        with pytest.raises(ValidationError, match="JSON object"):
            validate_request([1, 2], POLICY)

    def test_rejects_unknown_fields(self, body):
        with pytest.raises(ValidationError, match="unknown request field"):
            validate_request(dict(body, priority=9), POLICY)

    def test_rejects_bad_instances(self, body):
        with pytest.raises(ValidationError, match="bad instance"):
            validate_request(
                dict(body, instance={"kind": "cdd", "processing": [1.0]}),
                POLICY,
            )

    def test_rejects_unknown_methods(self, body):
        with pytest.raises(ValidationError, match="unknown method"):
            validate_request(dict(body, method="gradient_descent"), POLICY)

    def test_runs_the_config_mixin_checks(self, body):
        with pytest.raises(ValidationError, match="iterations"):
            validate_request(
                dict(body, config={"iterations": -5}), POLICY
            )

    def test_rejects_unknown_config_keys(self, body):
        with pytest.raises(ValidationError, match="bad config"):
            validate_request(
                dict(body, config={"iterationz": 10}), POLICY
            )

    def test_reserved_execution_knobs_are_refused(self, body):
        with pytest.raises(ValidationError, match="execution knobs"):
            validate_request(dict(body, config={"workers": 64}), POLICY)
        with pytest.raises(ValidationError, match="execution knobs"):
            validate_request(
                dict(body, config={"hosts": "evil:1"}), POLICY
            )

    def test_serial_methods_take_no_engine_backend(self, body):
        with pytest.raises(ValidationError, match="no engine backend"):
            validate_request(dict(body, backend="vectorized"), POLICY)

    def test_parallel_methods_default_the_policy_backend(self, instance):
        validated = validate_request(
            {"instance": instance.to_dict(), "method": "parallel_sa"},
            POLICY,
        )
        assert validated.backend == POLICY.default_backend
        assert validated.solve_kwargs["backend"] == POLICY.default_backend

    def test_distributed_requires_server_hosts(self, instance):
        request = {
            "instance": instance.to_dict(),
            "method": "parallel_sa",
            "backend": "distributed",
        }
        with pytest.raises(ValidationError, match="--hosts"):
            validate_request(request, POLICY)
        allowed = AdmissionPolicy(hosts="localhost:7471:2")
        validated = validate_request(request, allowed)
        assert validated.solve_kwargs["hosts"] == "localhost:7471:2"

    def test_exact_takes_no_config(self, instance):
        with pytest.raises(ValidationError, match="takes no config"):
            validate_request(
                {
                    "instance": instance.to_dict(),
                    "method": "exact",
                    "config": {"iterations": 5},
                },
                POLICY,
            )

    def test_deadline_must_be_positive(self, body):
        with pytest.raises(ValidationError, match="deadline_s"):
            validate_request(dict(body, deadline_s=-1), POLICY)
        with pytest.raises(ValidationError, match="deadline_s"):
            validate_request(dict(body, deadline_s="soon"), POLICY)

    def test_canonical_config_resolves_defaults(self, instance):
        sparse = validate_request(
            {"instance": instance.to_dict(), "method": "serial_sa"},
            POLICY,
        )
        from repro.core.sa import SerialSAConfig

        explicit = validate_request(
            {
                "instance": instance.to_dict(),
                "method": "serial_sa",
                "config": {"iterations": SerialSAConfig().iterations},
            },
            POLICY,
        )
        assert sparse.canonical_config == explicit.canonical_config


class TestServiceCore:
    def test_solve_matches_direct_solver(self, service, instance, body):
        status, doc, _ = service.submit(body)
        assert status == 202 and doc["state"] == "queued"
        wait_state(service, doc["job_id"])
        code, result_doc, _ = service.job_result(doc["job_id"])
        assert code == 200
        direct = solver_for(instance).solve(
            "serial_sa", iterations=60, seed=5
        )
        assert result_doc["result"]["objective"] == direct.objective
        assert (
            result_doc["result"]["best_sequence"]
            == direct.best_sequence.tolist()
        )
        assert (
            result_doc["result"]["completion"]
            == direct.schedule.completion.tolist()
        )

    def test_cache_hit_is_byte_identical(self, service, body):
        status, first, _ = service.submit(body)
        assert status == 202
        wait_state(service, first["job_id"])
        _, fresh, _ = service.job_result(first["job_id"])
        status, second, _ = service.submit(body)
        assert status == 200  # served immediately, no queueing
        assert second["state"] == "done" and second["cached"] is True
        _, replayed, _ = service.job_result(second["job_id"])
        assert _render(replayed) == _render(fresh)
        counters = service.metrics.snapshot()
        assert counters["cache_hits"] == 1
        assert counters["cache_misses"] == 1
        assert counters["cache_stores"] == 1

    def test_jobs_share_one_cache_entry_across_spellings(
        self, service, instance, body
    ):
        from repro.core.sa import SerialSAConfig

        service.submit(body)
        explicit = {
            "instance": instance.to_dict(),
            "method": "serial_sa",
            "config": {
                "iterations": 60,
                "seed": 5,
                "pert_size": SerialSAConfig().pert_size,
            },
        }
        status, doc, _ = service.submit(body)
        wait_state(service, doc["job_id"])
        status, doc, _ = service.submit(explicit)
        assert status == 200 and doc["cached"] is True

    def test_invalid_submission_is_400(self, service, body):
        status, doc, _ = service.submit(dict(body, method="nope"))
        assert status == 400
        assert doc["error_type"] == "validation"
        assert service.metrics.snapshot()["rejected_invalid"] == 1

    def test_unknown_job_is_404_and_unfinished_is_409(self, service, body):
        assert service.job_status("zzz")[0] == 404
        assert service.job_result("zzz")[0] == 404
        status, doc, _ = service.submit(body)
        code, unfinished, _ = service.job_result(doc["job_id"])
        if code != 200:  # the worker may legitimately win the race
            assert code == 409
            assert unfinished["error_type"] == "unfinished"
        wait_state(service, doc["job_id"])

    def test_batch_admits_items_independently(self, service, instance, body):
        bad = dict(body, method="nope")
        status, doc, _ = service.submit_batch({"jobs": [body, bad]})
        assert status == 200
        first, second = doc["jobs"]
        assert first["status"] == 202
        assert second["status"] == 400
        wait_state(service, first["job_id"])

    def test_batch_size_is_bounded(self, service, body):
        over = [body] * (service.policy.max_batch + 1)
        status, doc, _ = service.submit_batch({"jobs": over})
        assert status == 400 and "max_batch" in doc["error"]


class TestQueueFull:
    def test_429_while_full_without_degrading_inflight(self, tmp_path):
        service = SchedulingService(
            policy=AdmissionPolicy(queue_cap=1, retry_after_s=2.0),
            workers=1,
            cache=None,
        )
        service.start()
        try:
            inst = biskup_instance(n=40, h=0.4, k=1)
            slow = {
                "instance": inst.to_dict(),
                "method": "serial_sa",
                "config": {"iterations": 2_000_000, "seed": 1},
            }
            quick = {
                "instance": inst.to_dict(),
                "method": "serial_sa",
                "config": {"iterations": 10, "seed": 2},
            }
            status, running, _ = service.submit(slow)
            assert status == 202
            # Wait until the worker picked it up, so the queue slot frees.
            assert wait_for(
                lambda: service.registry.status(
                    running["job_id"]
                )["state"] == "running"
            )
            status, queued, _ = service.submit(quick)
            assert status == 202  # occupies the one queue slot
            status, doc, headers = service.submit(quick)
            assert status == 429
            assert doc["error_type"] == "queue_full"
            assert headers["Retry-After"] == "2"
            # The bounced job left no registry ghost behind.
            assert service.registry.counts()["queued"] == 1
            assert service.metrics.snapshot()["rejected_queue_full"] == 1
            # In-flight and queued work is unaffected by the rejection.
            assert service.health()[1]["status"] == "ok"
            assert (
                service.registry.status(running["job_id"])["state"]
                == "running"
            )
        finally:
            # Shutdown cancels the multi-minute in-flight solve promptly.
            start = time.monotonic()
            service.stop()
            assert time.monotonic() - start < 10.0
        status = service.registry.status(running["job_id"])
        assert status["state"] == "failed"
        assert status["error"]["error_type"] in ("cancelled", "shutdown")


class TestWorkerFaults:
    def test_killed_worker_fails_one_job_not_the_service(
        self, tmp_path, body
    ):
        service = SchedulingService(
            policy=AdmissionPolicy(queue_cap=4),
            workers=1,
            cache=ResultCache(tmp_path / "cache"),
            fault_plan=PoolFaultPlan([parse_pool_fault("kill:0")]),
        )
        service.start()
        try:
            status, doomed, _ = service.submit(body)
            assert status == 202
            final = wait_state(service, doomed["job_id"])
            assert final["state"] == "failed"
            assert final["error"]["error_type"] == "worker_crash"
            code, failed_doc, _ = service.job_result(doomed["job_id"])
            assert code == 500
            assert failed_doc["error"]["error_type"] == "worker_crash"
            # A failed solve never populates the cache.
            assert service.cache.stats()["stores"] == 0
            # The service keeps serving: the next job (seq 1) runs clean.
            status, healthy, _ = service.submit(
                dict(body, config={"iterations": 60, "seed": 6})
            )
            final = wait_state(service, healthy["job_id"])
            assert final["state"] == "done"
            assert service.health()[1]["status"] == "ok"
        finally:
            service.stop()

    def test_retries_absorb_a_transient_worker_death(self, tmp_path, body):
        service = SchedulingService(
            policy=AdmissionPolicy(queue_cap=4),
            workers=1,
            cache=None,
            task_retries=1,
            fault_plan=PoolFaultPlan([parse_pool_fault("kill:0")]),
        )
        service.start()
        try:
            status, doc, _ = service.submit(body)
            final = wait_state(service, doc["job_id"])
            assert final["state"] == "done"
        finally:
            service.stop()

    def test_deadline_maps_onto_the_dispatch_watchdog(self, instance):
        service = SchedulingService(
            policy=AdmissionPolicy(queue_cap=4), workers=1, cache=None
        )
        service.start()
        try:
            hung = {
                "instance": biskup_instance(n=40, h=0.4, k=1).to_dict(),
                "method": "serial_sa",
                "config": {"iterations": 2_000_000, "seed": 1},
                "deadline_s": 0.3,
            }
            status, doc, _ = service.submit(hung)
            assert status == 202
            final = wait_state(service, doc["job_id"])
            assert final["state"] == "failed"
            assert final["error"]["error_type"] == "worker_timeout"
        finally:
            service.stop()


def http_call(base, method, path, body=None, timeout=15):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


class TestHTTPLayer:
    @pytest.fixture
    def served(self, service):
        server = make_server(service, "127.0.0.1", 0)
        import threading

        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield f"http://{server.label}"
        server.shutdown()
        server.server_close()

    def test_end_to_end_over_http(self, served, instance, body):
        code, health, _ = http_call(served, "GET", "/healthz")
        assert code == 200 and health["status"] == "ok"
        code, doc, _ = http_call(served, "POST", "/v1/submit", body)
        assert code == 202
        job_id = doc["job_id"]
        assert wait_for(lambda: http_call(
            served, "GET", f"/v1/jobs/{job_id}"
        )[1]["state"] == "done")
        code, result, _ = http_call(
            served, "GET", f"/v1/jobs/{job_id}/result"
        )
        assert code == 200
        direct = solver_for(instance).solve(
            "serial_sa", iterations=60, seed=5
        )
        assert result["result"]["objective"] == direct.objective
        code, metrics, _ = http_call(served, "GET", "/metrics")
        assert code == 200
        assert metrics["counters"]["jobs_completed"] == 1

    def test_http_cache_hit_replays_identical_bytes(self, served, body):
        code, first, _ = http_call(served, "POST", "/v1/submit", body)
        assert wait_for(lambda: http_call(
            served, "GET", f"/v1/jobs/{first['job_id']}"
        )[1]["state"] == "done")
        raw = []
        for _ in range(2):
            c, doc, _ = http_call(served, "POST", "/v1/submit", body)
            assert c == 200 and doc["cached"] is True
            with urllib.request.urlopen(
                f"{served}/v1/jobs/{doc['job_id']}/result", timeout=15
            ) as response:
                raw.append(response.read())
        assert raw[0] == raw[1]

    def test_unknown_route_is_404(self, served):
        assert http_call(served, "GET", "/v2/nope")[0] == 404
        assert http_call(served, "POST", "/v1/nope", {})[0] == 404

    def test_unparseable_body_is_400(self, served):
        request = urllib.request.Request(
            served + "/v1/submit", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=15)
        assert info.value.code == 400

    def test_oversized_body_is_413(self, service, served):
        big = b"x" * (service.policy.max_body_bytes + 1)
        request = urllib.request.Request(
            served + "/v1/submit", data=big, method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=15)
        assert info.value.code == 413


class TestServeCLI:
    def test_parser_accepts_serve_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--bind", "127.0.0.1:0", "--workers", "2",
            "--queue-cap", "3", "--cache-dir", "none",
            "--ready-file", "/tmp/svc.addr", "--task-timeout", "5",
            "--inject-pool-fault", "kill:0",
        ])
        assert args.command == "serve"
        assert args.workers == 2 and args.queue_cap == 3
        assert args.cache_dir == "none"
        assert args.ready_file == "/tmp/svc.addr"

    def test_ready_file_semantics_match_repro_agent(self, tmp_path):
        """serve --ready-file writes HOST:PORT after bind, like agent."""
        ready = tmp_path / "service.addr"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(p) for p in (env.get("PYTHONPATH"),) if p]
            + [os.path.join(os.getcwd(), "src")]
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--bind", "127.0.0.1:0", "--ready-file", str(ready),
             "--cache-dir", "none"],
            env=env, stderr=subprocess.PIPE,
        )
        try:
            assert wait_for(
                lambda: ready.exists() and ready.read_text().strip() != "",
                timeout=30.0, tick=0.1,
            )
            label = ready.read_text().strip()
            host, port = label.rsplit(":", 1)
            assert host == "127.0.0.1" and int(port) > 0
            code, health, _ = http_call(f"http://{label}", "GET", "/healthz")
            assert code == 200 and health["status"] == "ok"
        finally:
            proc.send_signal(signal.SIGINT)
            proc.wait(timeout=30)
        assert proc.returncode == 0
