"""Content-addressed result cache: keys, storage, and quarantine."""

import json

import pytest

from repro.instances import biskup_instance, instance_digest, mapping_digest
from repro.instances.ucddcp_gen import ucddcp_instance
from repro.problems.cdd import CDDInstance
from repro.resilience.checkpoint import record_crc
from repro.service.admission import AdmissionPolicy, validate_request
from repro.service.cache import CACHE_SCHEMA, CacheKey, ResultCache

POLICY = AdmissionPolicy()


def key_for(body: dict) -> CacheKey:
    return CacheKey.for_job(validate_request(body, POLICY))


@pytest.fixture
def instance():
    return biskup_instance(n=8, h=0.4, k=1)


@pytest.fixture
def body(instance):
    return {
        "instance": instance.to_dict(),
        "method": "serial_sa",
        "config": {"iterations": 100, "seed": 5},
    }


class TestInstanceDigest:
    def test_stable_across_reconstruction(self, instance):
        clone = CDDInstance.from_dict(instance.to_dict())
        assert instance_digest(clone) == instance_digest(instance)

    def test_sensitive_to_problem_fields(self, instance):
        data = instance.to_dict()
        data["due_date"] = data["due_date"] + 1.0
        changed = CDDInstance.from_dict(data)
        assert instance_digest(changed) != instance_digest(instance)

    def test_distinguishes_problem_kinds(self, instance):
        other = ucddcp_instance(n=8, k=1)
        assert instance_digest(other) != instance_digest(instance)

    def test_mapping_digest_is_order_insensitive(self):
        assert mapping_digest({"a": 1, "b": 2}) == mapping_digest(
            {"b": 2, "a": 1}
        )


class TestCacheKey:
    """The key must react to every component of solve identity —
    and to nothing else."""

    def test_equivalent_spellings_share_a_key(self, instance, body):
        from repro.core.sa import SerialSAConfig

        explicit = dict(body)
        explicit["config"] = {
            "iterations": 100,
            "seed": 5,
            "pert_size": SerialSAConfig().pert_size,
        }
        assert key_for(explicit).hex == key_for(body).hex

    def test_sensitive_to_instance(self, body):
        other = dict(body)
        other["instance"] = biskup_instance(n=8, h=0.6, k=1).to_dict()
        assert key_for(other).hex != key_for(body).hex

    def test_sensitive_to_method(self, body):
        other = dict(body)
        other["method"] = "serial_ta"
        assert key_for(other).hex != key_for(body).hex

    def test_sensitive_to_config(self, body):
        other = dict(body)
        other["config"] = {"iterations": 101, "seed": 5}
        assert key_for(other).hex != key_for(body).hex

    def test_sensitive_to_seed(self, body):
        other = dict(body)
        other["config"] = {"iterations": 100, "seed": 6}
        key, other_key = key_for(body), key_for(other)
        assert other_key.hex != key.hex
        # ... and only through the seed component.
        assert other_key.config == key.config
        assert other_key.instance == key.instance

    def test_sensitive_to_device_profile(self, instance):
        base = {
            "instance": instance.to_dict(),
            "method": "parallel_sa",
            "config": {"iterations": 10},
        }
        other = {
            "instance": instance.to_dict(),
            "method": "parallel_sa",
            "config": {"iterations": 10, "device_profile": "pascal"},
        }
        key, other_key = key_for(base), key_for(other)
        assert other_key.hex != key.hex
        assert other_key.device_profile != key.device_profile

    def test_sensitive_to_engine_backend(self, instance):
        base = {
            "instance": instance.to_dict(),
            "method": "parallel_sa",
            "config": {"iterations": 10},
        }
        other = dict(base, backend="multiprocess")
        assert key_for(other).hex != key_for(base).hex


class TestResultCache:
    def test_miss_then_store_then_hit(self, tmp_path, body):
        cache = ResultCache(tmp_path / "cache")
        key = key_for(body)
        assert cache.load(key) is None
        payload = {"result": {"objective": 42.0}}
        cache.store(key, payload)
        assert cache.load(key) == payload
        assert cache.stats() == {
            "hits": 1, "misses": 1, "stores": 1, "quarantined": 0,
        }

    def test_entries_are_crc_guarded_records(self, tmp_path, body):
        cache = ResultCache(tmp_path / "cache")
        key = key_for(body)
        cache.store(key, {"x": 1})
        record = json.loads(cache.path_for(key).read_text())
        assert record["schema"] == CACHE_SCHEMA
        assert record["key"] == key.hex
        assert record["components"] == key.components()
        assert record["crc"] == record_crc(record)

    def test_corrupt_json_is_quarantined(self, tmp_path, body):
        cache = ResultCache(tmp_path / "cache")
        key = key_for(body)
        cache.store(key, {"x": 1})
        path = cache.path_for(key)
        corrupt = path.read_text()[:-10]
        path.write_text(corrupt)
        assert cache.load(key) is None
        assert not path.exists()
        quarantined = tmp_path / "cache" / "quarantine" / path.name
        assert quarantined.read_text() == corrupt  # evidence kept verbatim
        assert cache.stats()["quarantined"] == 1
        # The miss recomputes and restores the entry.
        cache.store(key, {"x": 1})
        assert cache.load(key) == {"x": 1}

    def test_bitrot_fails_the_crc_and_quarantines(self, tmp_path, body):
        cache = ResultCache(tmp_path / "cache")
        key = key_for(body)
        cache.store(key, {"objective": 42.0})
        path = cache.path_for(key)
        record = json.loads(path.read_text())
        record["payload"]["objective"] = 41.0  # flip without fixing the CRC
        path.write_text(json.dumps(record, sort_keys=True) + "\n")
        assert cache.load(key) is None
        assert (tmp_path / "cache" / "quarantine" / path.name).exists()

    def test_unknown_schema_is_quarantined(self, tmp_path, body):
        cache = ResultCache(tmp_path / "cache")
        key = key_for(body)
        cache.store(key, {"x": 1})
        path = cache.path_for(key)
        record = json.loads(path.read_text())
        record["schema"] = CACHE_SCHEMA + 1
        record["crc"] = record_crc(record)
        path.write_text(json.dumps(record, sort_keys=True) + "\n")
        assert cache.load(key) is None
        assert cache.stats()["quarantined"] == 1

    def test_key_mismatch_is_quarantined(self, tmp_path, body):
        """An entry renamed onto the wrong address must not be served."""
        cache = ResultCache(tmp_path / "cache")
        key = key_for(body)
        other = dict(body)
        other["config"] = {"iterations": 100, "seed": 6}
        other_key = key_for(other)
        cache.store(other_key, {"x": 1})
        target = cache.path_for(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(other_key).rename(target)
        assert cache.load(key) is None
        assert cache.stats()["quarantined"] == 1

    def test_two_level_fanout_layout(self, tmp_path, body):
        cache = ResultCache(tmp_path / "cache")
        key = key_for(body)
        path = cache.path_for(key)
        assert path.parent.name == key.hex[:2]
        assert path.name == f"{key.hex}.json"
