"""The write-ahead job journal: replay, read-through, corruption matrix."""

import json

import pytest

from repro.resilience.checkpoint import record_crc
from repro.service.journal import (
    JOURNAL_SCHEMA,
    JobJournal,
    RecoveredJob,
)


@pytest.fixture
def journal(tmp_path):
    return JobJournal(tmp_path / "journal.jsonl")


REQUEST = {"instance": {"kind": "cdd"}, "method": "serial_sa"}
DOCUMENT = {"instance": "i", "method": "serial_sa", "key": "k",
            "result": {"cost": 42}}


def submit(journal, job_id, seq, **overrides):
    fields = dict(
        request=REQUEST, key=f"key-{job_id}", method="serial_sa",
        instance_name="biskup", idempotency_key=None,
    )
    fields.update(overrides)
    journal.record_submitted(job_id, seq=seq, **fields)


def reopen(journal):
    """A fresh instance over the same file — the restart's view."""
    return JobJournal(journal.path)


class TestReplay:
    def test_empty_or_missing_journal_recovers_nothing(self, journal):
        recovery = journal.replay()
        assert recovery.terminal == [] and recovery.pending == []
        assert recovery.max_seq == 0 and recovery.quarantined_lines == 0

    def test_done_job_is_terminal_with_offset(self, journal):
        submit(journal, "j000001", 1)
        journal.record_running("j000001")
        journal.record_done(
            "j000001", document=DOCUMENT, cached=False, duration_s=0.5
        )
        recovery = reopen(journal).replay()
        assert [job.job_id for job in recovery.terminal] == ["j000001"]
        job = recovery.terminal[0]
        assert job.state == "done" and job.terminal_offset is not None
        assert recovery.pending == []
        assert recovery.max_seq == 1

    def test_failed_job_is_terminal(self, journal):
        submit(journal, "j000001", 1)
        journal.record_failed(
            "j000001", error={"error": "boom", "error_type": "worker_crash"},
            duration_s=0.1,
        )
        recovery = reopen(journal).replay()
        assert recovery.terminal[0].state == "failed"

    def test_unfinished_jobs_are_pending_in_admission_order(self, journal):
        submit(journal, "j000001", 1)
        journal.record_running("j000001")
        submit(journal, "j000002", 2)
        submit(journal, "j000003", 3)
        journal.record_interrupted("j000003")
        recovery = reopen(journal).replay()
        assert [job.job_id for job in recovery.pending] == [
            "j000001", "j000002", "j000003"
        ]
        # queued / running / interrupted all degrade to re-runnable.
        assert {job.state for job in recovery.pending} == {"queued"}
        assert recovery.max_seq == 3

    def test_idempotency_keys_survive_replay(self, journal):
        submit(journal, "j000001", 1, idempotency_key="alpha")
        submit(journal, "j000002", 2)
        recovery = reopen(journal).replay()
        assert recovery.idempotency == {"alpha": "j000001"}

    def test_running_before_submitted_is_tolerated(self, journal):
        # The admission thread journals `submitted` after the enqueue
        # decision, so a racing worker can journal `running` first.
        journal.record_running("j000001")
        submit(journal, "j000001", 1)
        recovery = reopen(journal).replay()
        assert [job.job_id for job in recovery.pending] == ["j000001"]

    def test_done_before_submitted_stays_terminal(self, journal):
        journal.record_done(
            "j000001", document=DOCUMENT, cached=False, duration_s=0.2
        )
        submit(journal, "j000001", 1)
        recovery = reopen(journal).replay()
        assert [job.job_id for job in recovery.terminal] == ["j000001"]
        assert recovery.pending == []


class TestLookup:
    def test_done_lookup_returns_the_stored_document(self, journal):
        submit(journal, "j000001", 1)
        journal.record_done(
            "j000001", document=DOCUMENT, cached=True, duration_s=0.25
        )
        restarted = reopen(journal)
        restarted.replay()
        view = restarted.lookup("j000001")
        assert view["state"] == "done" and view["cached"] is True
        assert view["document"] == DOCUMENT
        assert view["duration_s"] == 0.25
        assert view["method"] == "serial_sa" and view["key"] == "key-j000001"

    def test_failed_lookup_returns_the_error(self, journal):
        error = {"error": "boom", "error_type": "worker_crash"}
        submit(journal, "j000001", 1)
        journal.record_failed("j000001", error=error, duration_s=None)
        restarted = reopen(journal)
        restarted.replay()
        view = restarted.lookup("j000001")
        assert view["state"] == "failed" and view["error"] == error
        assert "document" not in view and "duration_s" not in view

    def test_unknown_and_unfinished_jobs_lookup_none(self, journal):
        submit(journal, "j000001", 1)
        restarted = reopen(journal)
        restarted.replay()
        assert restarted.lookup("j000001") is None  # no terminal line
        assert restarted.lookup("j999999") is None

    def test_lookup_recrc_checks_degrade_to_none(self, journal):
        # Corruption landing *after* the index was built must surface as
        # not-found, never as a wrong answer: lookup re-verifies CRCs.
        submit(journal, "j000001", 1)
        journal.record_done(
            "j000001", document=DOCUMENT, cached=False, duration_s=0.1
        )
        restarted = reopen(journal)
        restarted.replay()
        raw = bytearray(journal.path.read_bytes())
        offset = restarted._terminal_offsets["j000001"]
        raw[offset + 5] ^= 0xFF
        journal.path.write_bytes(bytes(raw))
        assert restarted.lookup("j000001") is None


class TestCorruptionMatrix:
    """Bitrot, truncation, CRC mismatch and schema skew are quarantined
    verbatim; intact records keep replaying."""

    def _lines(self, journal):
        return journal.path.read_bytes().decode("utf-8").splitlines()

    def test_bitrot_quarantines_line_and_demotes_terminal(self, journal):
        submit(journal, "j000001", 1)
        journal.record_done(
            "j000001", document=DOCUMENT, cached=False, duration_s=0.1
        )
        lines = self._lines(journal)
        corrupted = lines[1][:10] + "\x00\x00" + lines[1][14:]
        journal.path.write_text(
            "\n".join([lines[0], corrupted]) + "\n", encoding="utf-8"
        )
        recovery = reopen(journal).replay()
        assert recovery.quarantined_lines == 1
        # The terminal line is gone, but the job is deterministic: it
        # degrades to pending and re-runs bit-identically.
        assert [job.job_id for job in recovery.pending] == ["j000001"]
        assert recovery.terminal == []

    def test_torn_tail_line_quarantined_prior_records_intact(self, journal):
        submit(journal, "j000001", 1)
        journal.record_done(
            "j000001", document=DOCUMENT, cached=False, duration_s=0.1
        )
        submit(journal, "j000002", 2)
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[: len(raw) - 40])  # tear the tail
        recovery = reopen(journal).replay()
        assert recovery.quarantined_lines == 1
        assert [job.job_id for job in recovery.terminal] == ["j000001"]
        assert recovery.pending == []  # j000002's submitted line was torn

    def test_crc_mismatch_is_quarantined(self, journal):
        submit(journal, "j000001", 1)
        record = {
            "event": "done", "job_id": "j000001", "cached": False,
            "duration_s": 0.1, "document": DOCUMENT,
            "schema": JOURNAL_SCHEMA, "crc": "deadbeef",
        }
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        recovery = reopen(journal).replay()
        assert recovery.quarantined_lines == 1
        assert [job.job_id for job in recovery.pending] == ["j000001"]

    def test_schema_skew_is_quarantined_not_guessed(self, journal):
        submit(journal, "j000001", 1)
        record = {
            "event": "done", "job_id": "j000001", "cached": False,
            "duration_s": 0.1, "document": DOCUMENT,
            "schema": JOURNAL_SCHEMA + 1,
        }
        record["crc"] = record_crc(record)  # valid CRC, future schema
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        recovery = reopen(journal).replay()
        assert recovery.quarantined_lines == 1
        assert [job.job_id for job in recovery.pending] == ["j000001"]

    def test_corrupt_submitted_line_drops_the_job(self, journal):
        submit(journal, "j000001", 1)
        journal.record_running("j000001")
        lines = self._lines(journal)
        journal.path.write_text(
            "\n".join(["{garbage", lines[1]]) + "\n", encoding="utf-8"
        )
        recovery = reopen(journal).replay()
        assert recovery.quarantined_lines == 1
        # Without the submitted line there is no request to re-run.
        assert recovery.pending == [] and recovery.terminal == []

    def test_rejected_lines_preserved_verbatim(self, journal):
        submit(journal, "j000001", 1)
        lines = self._lines(journal)
        garbage = '{"event": "done", "job_id": "j000001", "schema": 1}'
        journal.path.write_text(
            "\n".join([lines[0], garbage]) + "\n", encoding="utf-8"
        )
        restarted = reopen(journal)
        restarted.replay()
        quarantined = restarted.quarantine_path.read_text(encoding="utf-8")
        assert garbage in quarantined


class TestAppendDurability:
    def test_appends_counted_and_file_is_jsonl_with_crcs(self, journal):
        submit(journal, "j000001", 1)
        journal.record_running("j000001")
        assert journal.appends == 2
        for line in journal.path.read_text(encoding="utf-8").splitlines():
            record = json.loads(line)
            assert record["schema"] == JOURNAL_SCHEMA
            assert record["crc"] == record_crc(record)

    def test_recovered_job_defaults(self):
        job = RecoveredJob(job_id="j000001", seq=1)
        assert job.state == "queued" and job.request is None
