"""Durability drills: restart recovery, idempotency, eviction, drain.

The tentpole contract under test: a ``repro serve --state-dir DIR`` can
be killed at any instant and restarted with the same state dir, and
every pre-crash job id resolves — terminal jobs byte-identically, via
journal read-through; interrupted jobs by idempotent re-execution
through the content-addressed cache.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.instances import biskup_instance
from repro.service.admission import AdmissionPolicy, validate_request
from repro.service.api import SchedulingService, _render
from repro.service.cache import ResultCache
from repro.service.journal import JobJournal
from repro.service.queue import JobDispatcher


@pytest.fixture
def instance():
    return biskup_instance(n=8, h=0.4, k=1)


def quick_body(instance, seed=5, **extra):
    body = {
        "instance": instance.to_dict(),
        "method": "serial_sa",
        "config": {"iterations": 60, "seed": seed},
    }
    body.update(extra)
    return body


def slow_body(instance, seed=1):
    # ~25k serial_sa iterations/s: this runs for minutes if not stopped.
    return {
        "instance": instance.to_dict(),
        "method": "serial_sa",
        "config": {"iterations": 2_000_000, "seed": seed},
    }


def wait_for(predicate, timeout=60.0, tick=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(tick)
    return False


def wait_terminal(service, job_id, timeout=60.0):
    assert wait_for(
        lambda: service.job_status(job_id)[1].get("state")
        in ("done", "failed"),
        timeout=timeout,
    ), service.job_status(job_id)[1]
    return service.job_status(job_id)[1]


def make_service(tmp_path, **overrides):
    fields = dict(
        policy=AdmissionPolicy(queue_cap=8),
        workers=1,
        cache=ResultCache(tmp_path / "cache"),
        state_dir=tmp_path / "state",
    )
    fields.update(overrides)
    return SchedulingService(**fields)


class TestRestartRecovery:
    def test_terminal_jobs_resolve_byte_identically_after_restart(
        self, tmp_path, instance
    ):
        svc1 = make_service(tmp_path)
        svc1.start()
        try:
            status, doc, _ = svc1.submit(quick_body(instance))
            assert status == 202
            job_id = doc["job_id"]
            wait_terminal(svc1, job_id)
            code, result, _ = svc1.job_result(job_id)
            assert code == 200
            before = _render(result)
        finally:
            svc1.stop()

        svc2 = make_service(tmp_path)
        svc2.start()
        try:
            # Byte-identical result straight from the journal: the job is
            # not even resident in the new registry.
            assert svc2.registry.get(job_id) is None
            code, result, _ = svc2.job_result(job_id)
            assert code == 200 and _render(result) == before
            code, status_doc, _ = svc2.job_status(job_id)
            assert code == 200 and status_doc["state"] == "done"
            assert svc2.metrics.snapshot()["journal_read_through"] >= 1
            # And the same request is a cache hit for new submissions.
            code, doc, _ = svc2.submit(quick_body(instance))
            assert code == 200 and doc["cached"] is True
        finally:
            svc2.stop()

    def test_interrupted_jobs_reenqueue_in_order_and_complete(
        self, tmp_path, instance
    ):
        svc1 = make_service(tmp_path)
        # Never started: submissions are journaled and queued, but no
        # worker exists to run them — the "crash before execution" shape.
        status, first, _ = svc1.submit(quick_body(instance, seed=5))
        assert status == 202
        status, second, _ = svc1.submit(quick_body(instance, seed=6))
        assert status == 202
        svc1.stop()  # journals both as interrupted

        svc2 = make_service(tmp_path)
        svc2.start()
        try:
            counters = svc2.metrics.snapshot()
            assert counters["recovered_requeued"] == 2
            for doc in (first, second):
                status_doc = wait_terminal(svc2, doc["job_id"])
                assert status_doc["state"] == "done"
            # Recovered jobs keep their original ids; new ids continue
            # past them instead of colliding.
            status, fresh, _ = svc2.submit(quick_body(instance, seed=7))
            assert fresh["job_id"] not in (first["job_id"], second["job_id"])
        finally:
            svc2.stop()

    def test_job_finished_just_before_crash_replays_as_cache_hit(
        self, tmp_path, instance
    ):
        body = quick_body(instance, seed=9)
        svc1 = make_service(tmp_path)
        svc1.start()
        try:
            status, doc, _ = svc1.submit(body)
            assert status == 202
            wait_terminal(svc1, doc["job_id"])
            code, result, _ = svc1.job_result(doc["job_id"])
            before = _render(result)
        finally:
            svc1.stop()

        # Simulate the crash window where the solve finished (result in
        # the cache) but the journal never saw `done`: a state dir whose
        # journal ends at `running`.
        state2 = tmp_path / "state2"
        journal = JobJournal(state2 / "journal.jsonl")
        journal.record_submitted(
            "j000007", seq=7, request=body, key="stale",
            method="serial_sa", instance_name=instance.name,
        )
        journal.record_running("j000007")

        svc2 = make_service(tmp_path, state_dir=state2)
        svc2.start()
        try:
            status_doc = wait_terminal(svc2, "j000007")
            assert status_doc["state"] == "done"
            assert status_doc["cached"] is True  # replayed, not re-solved
            code, result, _ = svc2.job_result("j000007")
            assert code == 200 and _render(result) == before
            # The id sequence resumed past the journaled seq.
            code, doc, _ = svc2.submit(quick_body(instance, seed=9))
            assert doc["job_id"] == "j000008"
        finally:
            svc2.stop()


class TestIdempotency:
    def test_duplicate_key_returns_the_original_job(
        self, tmp_path, instance
    ):
        svc = make_service(tmp_path)
        svc.start()
        try:
            body = quick_body(instance, idempotency_key="alpha")
            status, doc, _ = svc.submit(body)
            assert status == 202
            wait_terminal(svc, doc["job_id"])
            status, dup, _ = svc.submit(body)
            assert status == 200 and dup["job_id"] == doc["job_id"]
            assert svc.metrics.snapshot()["idempotent_replays"] == 1
        finally:
            svc.stop()

    def test_key_reuse_with_a_different_request_conflicts(
        self, tmp_path, instance
    ):
        svc = make_service(tmp_path)
        svc.start()
        try:
            status, doc, _ = svc.submit(
                quick_body(instance, seed=5, idempotency_key="alpha")
            )
            wait_terminal(svc, doc["job_id"])
            status, conflict, _ = svc.submit(
                quick_body(instance, seed=6, idempotency_key="alpha")
            )
            assert status == 409
            assert conflict["error_type"] == "idempotency_conflict"
            assert conflict["job_id"] == doc["job_id"]
        finally:
            svc.stop()

    def test_duplicate_key_survives_a_restart(self, tmp_path, instance):
        body = quick_body(instance, idempotency_key="alpha")
        svc1 = make_service(tmp_path)
        svc1.start()
        try:
            status, doc, _ = svc1.submit(body)
            original = doc["job_id"]
            wait_terminal(svc1, original)
        finally:
            svc1.stop()

        svc2 = make_service(tmp_path)
        svc2.start()
        try:
            status, dup, _ = svc2.submit(body)
            assert status == 200 and dup["job_id"] == original
            assert dup["state"] == "done"
            assert svc2.metrics.snapshot()["idempotent_replays"] == 1
        finally:
            svc2.stop()

    def test_bad_keys_are_rejected_at_validation(self, instance):
        policy = AdmissionPolicy()
        for bad in ("", "   ", 7, "x" * 201):
            with pytest.raises(Exception, match="idempotency_key"):
                validate_request(
                    quick_body(instance, idempotency_key=bad), policy
                )


class TestTerminalEviction:
    def test_evicted_jobs_served_read_through_from_the_journal(
        self, tmp_path, instance
    ):
        svc = make_service(tmp_path, max_terminal_jobs=1)
        svc.start()
        try:
            results = {}
            ids = []
            for seed in (21, 22, 23):
                status, doc, _ = svc.submit(quick_body(instance, seed=seed))
                assert status == 202
                job_id = doc["job_id"]
                ids.append(job_id)
                wait_terminal(svc, job_id)
                code, result, _ = svc.job_result(job_id)
                results[job_id] = _render(result)
            stats = svc.registry.eviction_stats()
            assert stats == {"evicted": 2, "terminal_retained": 1}
            assert svc.registry.get(ids[0]) is None
            # Evicted ids still resolve — and byte-identically.
            for job_id in ids:
                code, status_doc, _ = svc.job_status(job_id)
                assert code == 200 and status_doc["state"] == "done"
                code, result, _ = svc.job_result(job_id)
                assert code == 200 and _render(result) == results[job_id]
            code, metrics, _ = svc.metrics_doc()
            assert metrics["terminal_jobs"] == stats
            assert metrics["counters"]["journal_read_through"] >= 2
        finally:
            svc.stop()

    def test_eviction_without_a_journal_is_a_404(self, tmp_path, instance):
        svc = make_service(tmp_path, max_terminal_jobs=1, state_dir=None)
        svc.start()
        try:
            status, first, _ = svc.submit(quick_body(instance, seed=31))
            wait_terminal(svc, first["job_id"])
            status, second, _ = svc.submit(quick_body(instance, seed=32))
            wait_terminal(svc, second["job_id"])
            code, doc, _ = svc.job_status(first["job_id"])
            assert code == 404
        finally:
            svc.stop()


class TestDrain:
    def test_drain_refuses_submissions_and_journals_the_backlog(
        self, tmp_path, instance
    ):
        svc = make_service(
            tmp_path, cache=None, drain_grace_s=0.5,
            policy=AdmissionPolicy(queue_cap=8, retry_after_s=2.0),
        )
        svc.start()
        status, running, _ = svc.submit(slow_body(instance))
        assert status == 202
        assert wait_for(
            lambda: svc.job_status(running["job_id"])[1]["state"]
            == "running"
        )
        status, queued, _ = svc.submit(quick_body(instance))
        assert status == 202

        drained = {}
        thread = threading.Thread(
            target=lambda: drained.setdefault("leaked", svc.drain())
        )
        thread.start()
        try:
            assert wait_for(lambda: svc.health()[1]["status"] == "draining")
            status, doc, headers = svc.submit(quick_body(instance, seed=2))
            assert status == 503 and doc["error_type"] == "draining"
            assert int(headers["Retry-After"]) >= 2
            # Polling keeps working mid-drain.
            assert svc.job_status(running["job_id"])[0] == 200
        finally:
            thread.join(timeout=60)
        assert not thread.is_alive() and drained["leaked"] == 0

        # The queued job was abandoned; the in-flight one cancelled after
        # the grace expired.  Both are journaled for next-boot re-enqueue.
        assert svc.job_status(queued["job_id"])[1]["error"][
            "error_type"] == "shutdown"
        assert svc.job_status(running["job_id"])[1]["error"][
            "error_type"] == "cancelled"
        recovery = JobJournal(tmp_path / "state" / "journal.jsonl").replay()
        assert {job.job_id for job in recovery.pending} == {
            running["job_id"], queued["job_id"]
        }

    def test_drain_lets_inflight_work_finish_within_grace(
        self, tmp_path, instance
    ):
        svc = make_service(tmp_path, drain_grace_s=90.0)
        svc.start()
        body = dict(quick_body(instance, seed=41))
        body["config"] = {"iterations": 40_000, "seed": 41}  # ~1.5s
        status, doc, _ = svc.submit(body)
        assert status == 202
        leaked = svc.drain()
        assert leaked == 0
        status_doc = svc.job_status(doc["job_id"])[1]
        assert status_doc["state"] == "done"
        recovery = JobJournal(tmp_path / "state" / "journal.jsonl").replay()
        assert [job.job_id for job in recovery.terminal] == [doc["job_id"]]
        assert recovery.pending == []


class TestLeakedWorkerThreads:
    def test_dispatcher_counts_threads_that_outlive_the_join(self):
        release = threading.Event()
        picked_up = threading.Event()

        def stubborn(job, dispatch, seq):
            picked_up.set()
            release.wait(10.0)  # ignores cancel; outlives the join

        dispatcher = JobDispatcher(
            stubborn, workers=1, queue_cap=4, join_timeout_s=0.2
        )
        dispatcher.start()
        try:
            assert dispatcher.try_enqueue(object())
            assert picked_up.wait(5.0)
            leaked = dispatcher.stop()
            assert leaked == 1
            assert dispatcher.alive_workers() == 1
        finally:
            release.set()
        assert wait_for(lambda: dispatcher.alive_workers() == 0, timeout=10)

    def test_service_reports_leaked_threads_in_metrics(
        self, tmp_path, instance
    ):
        svc = make_service(tmp_path, cache=None)
        release = threading.Event()
        picked_up = threading.Event()

        def stubborn(job, dispatch, seq):
            picked_up.set()
            release.wait(10.0)

        svc.dispatcher._runner = stubborn
        svc.dispatcher.join_timeout_s = 0.2
        svc.start()
        try:
            status, doc, _ = svc.submit(quick_body(instance))
            assert status == 202
            assert picked_up.wait(5.0)
            leaked = svc.stop()
            assert leaked == 1
            assert svc.metrics.snapshot()["worker_threads_leaked"] == 1
        finally:
            release.set()

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_dead_worker_thread_degrades_health(self, tmp_path, instance):
        svc = make_service(tmp_path, cache=None, state_dir=None)

        def dying(job, dispatch, seq):
            raise RuntimeError("worker bug")

        svc.dispatcher._runner = dying
        svc.start()
        try:
            status, doc, _ = svc.submit(quick_body(instance))
            assert status == 202
            assert wait_for(lambda: svc.dispatcher.alive_workers() == 0)
            code, health, _ = svc.health()
            assert health["status"] == "degraded"
            assert any("worker" in reason for reason in health["reasons"])
            assert health["alive_workers"] == 0
        finally:
            svc.stop()


class TestRetryAfterScaling:
    def test_hint_scales_with_queue_depth_and_clamps(self, tmp_path):
        svc = make_service(
            tmp_path, cache=None, state_dir=None,
            policy=AdmissionPolicy(queue_cap=8, retry_after_s=2.0),
        )
        for depth, expected in ((0, 2.0), (1, 2.0), (5, 10.0), (100, 30.0)):
            svc.dispatcher.depth = lambda d=depth: d
            assert svc.retry_after_hint() == expected
        svc.dispatcher.depth = lambda: 7
        assert svc._retry_after_headers() == {"Retry-After": "14"}

    def test_floor_dominates_when_base_exceeds_the_cap(self, tmp_path):
        svc = make_service(
            tmp_path, cache=None, state_dir=None,
            policy=AdmissionPolicy(queue_cap=8, retry_after_s=45.0),
        )
        svc.dispatcher.depth = lambda: 100
        assert svc.retry_after_hint() == 45.0


# -- the SIGKILL drill ---------------------------------------------------


def http_json(base, method, path, body=None, timeout=15):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def http_raw(base, path, timeout=15):
    """Raw response bytes — what byte-identity is measured on."""
    with urllib.request.urlopen(base + path, timeout=timeout) as response:
        return response.status, response.read()


def serve_subprocess(tmp_path, tag):
    ready = tmp_path / f"ready-{tag}.addr"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(p) for p in (env.get("PYTHONPATH"),) if p]
        + [os.path.join(os.getcwd(), "src")]
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--bind", "127.0.0.1:0", "--ready-file", str(ready),
         "--state-dir", str(tmp_path / "state"),
         "--cache-dir", str(tmp_path / "cache"),
         "--workers", "1", "--drain-grace", "30"],
        env=env, stderr=subprocess.DEVNULL,
    )
    assert wait_for(
        lambda: ready.exists() and ready.read_text().strip() != "",
        timeout=60.0, tick=0.1,
    ), "service never wrote its ready file"
    return proc, f"http://{ready.read_text().strip()}"


class TestCrashRecoveryDrill:
    def test_sigkill_midjob_then_restart_resolves_every_id(self, tmp_path):
        instance = biskup_instance(n=8, h=0.4, k=1)
        done_body = quick_body(instance, seed=11, idempotency_key="drill")
        # ~3s of serial_sa: still in flight when the KILL lands, short
        # enough that the restarted service re-runs it quickly.
        midflight_body = {
            "instance": instance.to_dict(),
            "method": "serial_sa",
            "config": {"iterations": 70_000, "seed": 12},
        }

        proc, base = serve_subprocess(tmp_path, "pre")
        try:
            code, done_doc = http_json(base, "POST", "/v1/submit", done_body)
            assert code == 202
            done_id = done_doc["job_id"]
            assert wait_for(
                lambda: http_json(base, "GET", f"/v1/jobs/{done_id}")[1]
                .get("state") == "done",
                timeout=60.0, tick=0.1,
            )
            code, done_bytes = http_raw(base, f"/v1/jobs/{done_id}/result")
            assert code == 200

            code, mid_doc = http_json(
                base, "POST", "/v1/submit", midflight_body
            )
            assert code == 202
            mid_id = mid_doc["job_id"]
            assert wait_for(
                lambda: http_json(base, "GET", f"/v1/jobs/{mid_id}")[1]
                .get("state") == "running",
                timeout=60.0, tick=0.05,
            )
        finally:
            # The crash: no drain, no flush, no goodbye.
            proc.kill()
            proc.wait(timeout=30)

        proc, base = serve_subprocess(tmp_path, "post")
        try:
            # Pre-crash terminal job: byte-identical read-through.
            code, recovered_bytes = http_raw(
                base, f"/v1/jobs/{done_id}/result"
            )
            assert code == 200 and recovered_bytes == done_bytes

            # Duplicate idempotency key resolves to the original id,
            # across the restart.
            code, dup = http_json(base, "POST", "/v1/submit", done_body)
            assert code == 200 and dup["job_id"] == done_id

            # The mid-flight job re-ran idempotently under its old id.
            assert wait_for(
                lambda: http_json(base, "GET", f"/v1/jobs/{mid_id}")[1]
                .get("state") == "done",
                timeout=120.0, tick=0.2,
            ), http_json(base, "GET", f"/v1/jobs/{mid_id}")[1]
            code, mid_result = http_json(
                base, "GET", f"/v1/jobs/{mid_id}/result"
            )
            assert code == 200
            # Determinism check: a fresh submission of the same request
            # replays the recovered run's document from the cache.
            code, fresh = http_json(
                base, "POST", "/v1/submit", midflight_body
            )
            assert code == 200 and fresh["cached"] is True
            assert fresh["key"] == mid_result["key"]
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
        assert proc.returncode == 0
