"""Solver façade, instance generators, OR-library I/O and registry."""

import numpy as np
import pytest

from repro.core.solver import CDDSolver, UCDDCPSolver
from repro.instances.biskup import (
    BISKUP_H_FACTORS,
    BISKUP_JOB_SIZES,
    biskup_benchmark_suite,
    biskup_instance,
)
from repro.instances.orlib import parse_sch, write_sch
from repro.instances.registry import benchmark_set, registry_names
from repro.instances.ucddcp_gen import ucddcp_benchmark_suite, ucddcp_instance
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance


class TestSolverFacade:
    def test_cdd_methods(self, paper_cdd):
        solver = CDDSolver(paper_cdd)
        fast = dict(iterations=60)
        r1 = solver.solve("serial_sa", seed=1, **fast)
        r2 = solver.solve("parallel_sa", seed=1, grid_size=1,
                          block_size=32, **fast)
        r3 = solver.solve("serial_dpso", seed=1, swarm_size=8, **fast)
        r4 = solver.solve("parallel_dpso", seed=1, grid_size=1,
                          block_size=32, **fast)
        r5 = solver.solve("exact")
        for r in (r1, r2, r3, r4):
            assert r.objective >= r5.objective - 1e-9

    def test_unknown_method(self, paper_cdd):
        with pytest.raises(ValueError, match="unknown method"):
            CDDSolver(paper_cdd).solve("annealing")

    def test_type_checks(self, paper_cdd, paper_ucddcp):
        with pytest.raises(TypeError):
            CDDSolver(paper_ucddcp)
        with pytest.raises(TypeError):
            UCDDCPSolver(paper_cdd)

    def test_exact_unrestricted_uses_dp(self):
        rng = np.random.default_rng(1)
        p = rng.integers(1, 10, 12).astype(float)
        inst = CDDInstance(
            p, rng.integers(1, 10, 12).astype(float),
            rng.integers(1, 15, 12).astype(float), float(p.sum() + 3),
        )
        r = CDDSolver(inst).solve("exact")
        assert r.params["algorithm"] == "exact"
        assert r.objective > 0

    def test_exact_ucddcp(self, paper_ucddcp):
        r = UCDDCPSolver(paper_ucddcp).solve("exact")
        assert r.objective <= 77.0  # identity sequence achieves 77


class TestBiskupGenerator:
    def test_deterministic(self):
        a = biskup_instance(50, 0.4, 3)
        b = biskup_instance(50, 0.4, 3)
        assert a == b

    def test_job_data_shared_across_h(self):
        a = biskup_instance(50, 0.2, 3)
        b = biskup_instance(50, 0.8, 3)
        assert np.array_equal(a.processing, b.processing)
        assert np.array_equal(a.alpha, b.alpha)
        assert a.due_date < b.due_date

    def test_value_ranges(self):
        inst = biskup_instance(1000, 0.4, 1)
        assert inst.processing.min() >= 1 and inst.processing.max() <= 20
        assert inst.alpha.min() >= 1 and inst.alpha.max() <= 10
        assert inst.beta.min() >= 1 and inst.beta.max() <= 15
        assert float(inst.processing.sum()) * 0.4 - 1 <= inst.due_date

    def test_due_date_formula(self):
        inst = biskup_instance(100, 0.6, 2)
        assert inst.due_date == float(np.floor(0.6 * inst.processing.sum()))

    def test_replicates_differ(self):
        assert not np.array_equal(
            biskup_instance(50, 0.4, 1).processing,
            biskup_instance(50, 0.4, 2).processing,
        )

    def test_sizes_differ(self):
        assert biskup_instance(10, 0.4, 1).n == 10
        assert biskup_instance(20, 0.4, 1).n == 20

    def test_suite_counts(self):
        suite = list(
            biskup_benchmark_suite(sizes=(10, 20), h_factors=(0.2, 0.4),
                                   k_values=(1, 2, 3))
        )
        assert len(suite) == 2 * 2 * 3
        assert all(isinstance(i, CDDInstance) for i in suite)

    def test_paper_grid_constants(self):
        assert BISKUP_JOB_SIZES == (10, 20, 50, 100, 200, 500, 1000)
        assert BISKUP_H_FACTORS == (0.2, 0.4, 0.6, 0.8)

    def test_guards(self):
        with pytest.raises(ValueError):
            biskup_instance(0, 0.4, 1)
        with pytest.raises(ValueError):
            biskup_instance(10, 0.4, 0)
        with pytest.raises(ValueError):
            biskup_instance(10, -0.2, 1)


class TestUCDDCPGenerator:
    def test_deterministic(self):
        assert ucddcp_instance(50, 2) == ucddcp_instance(50, 2)

    def test_unrestricted(self):
        for k in range(1, 6):
            inst = ucddcp_instance(40, k)
            assert inst.due_date >= inst.total_processing

    def test_min_processing_bounds(self):
        inst = ucddcp_instance(500, 1)
        assert np.all(inst.min_processing >= 1)
        assert np.all(inst.min_processing <= inst.processing)

    def test_suite(self):
        suite = list(ucddcp_benchmark_suite(sizes=(10,), k_values=(1, 2)))
        assert len(suite) == 2
        assert all(isinstance(i, UCDDCPInstance) for i in suite)


class TestOrlibIO:
    def test_round_trip(self):
        instances = [biskup_instance(10, 0.4, k) for k in (1, 2, 3)]
        text = write_sch(instances)
        parsed = parse_sch(text, h=0.4)
        assert len(parsed) == 3
        for orig, back in zip(instances, parsed):
            assert np.array_equal(orig.processing, back.processing)
            assert np.array_equal(orig.alpha, back.alpha)
            assert np.array_equal(orig.beta, back.beta)
            assert orig.due_date == back.due_date

    def test_h_changes_due_date_only(self):
        text = write_sch([biskup_instance(10, 0.4, 1)])
        lo = parse_sch(text, h=0.2)[0]
        hi = parse_sch(text, h=0.8)[0]
        assert np.array_equal(lo.processing, hi.processing)
        assert lo.due_date < hi.due_date

    def test_explicit_n_checked(self):
        text = write_sch([biskup_instance(10, 0.4, 1)])
        with pytest.raises(ValueError, match="expected n"):
            parse_sch(text, h=0.4, n=12)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_sch("", h=0.4)

    def test_rejects_corrupt_token_count(self):
        with pytest.raises(ValueError, match="divisible"):
            parse_sch("2\n1 2 3\n4 5", h=0.4)

    def test_write_requires_uniform_n(self):
        with pytest.raises(ValueError, match="share n"):
            write_sch([biskup_instance(10, 0.4, 1),
                       biskup_instance(20, 0.4, 1)])

    def test_write_rejects_empty(self):
        with pytest.raises(ValueError):
            write_sch([])


class TestRegistry:
    def test_names(self):
        names = registry_names()
        assert "cdd_smoke" in names and "ucddcp_full" in names

    def test_smoke_set(self):
        s = benchmark_set("cdd_smoke")
        assert len(s) == 2
        assert all(isinstance(i, CDDInstance) for i in s)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark set"):
            benchmark_set("nope")
