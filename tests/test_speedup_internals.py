"""Speedup-study internals: reference pinning and column structure."""

import numpy as np

from repro.experiments.config import SCALES
from repro.experiments.speedup import (
    SpeedupCell,
    _serial_sa_time,
    run_speedup_study,
)
from repro.instances.biskup import biskup_instance

SMOKE = SCALES["smoke"]


class TestSerialReference:
    def test_per_unit_cost_stable_across_budgets(self):
        # The reference is per-iteration-measured and scaled linearly; the
        # implied per-unit cost must be stable across budget/population
        # combinations (within timer noise on a busy machine).
        inst = biskup_instance(30, 0.4, 1)
        _serial_sa_time(inst, 200, population=16)  # warm up caches
        per_unit = [
            _serial_sa_time(inst, iters, population=pop) / (iters * pop)
            for iters, pop in ((1000, 64), (2000, 64), (500, 128))
        ]
        assert max(per_unit) / min(per_unit) < 2.5

    def test_larger_instances_cost_more(self):
        small = _serial_sa_time(biskup_instance(10, 0.4, 1), 1000, 64)
        large = _serial_sa_time(biskup_instance(500, 0.4, 1), 1000, 64)
        assert large > small


class TestCellStructure:
    def test_cell_derived_speedups(self):
        cell = SpeedupCell(
            size=10, algorithm="SA", iterations=100,
            serial_cpu_s=10.0, modeled_gpu_s=2.0, measured_wall_s=4.0,
        )
        assert cell.speedup_modeled == 5.0
        assert cell.speedup_measured == 2.5

    def test_common_reference_across_columns(self):
        study = run_speedup_study("cdd", SMOKE, use_cache=False)
        # All four columns of one size divide the SAME CPU reference --
        # the paper's one-published-number-per-size structure.
        for n in study.sizes:
            refs = {study.cells[(n, lab)].serial_cpu_s
                    for lab in study.labels}
            assert len(refs) == 1

    def test_high_budget_gpu_time_about_5x(self):
        study = run_speedup_study("cdd", SMOKE, use_cache=False)
        gpu = study.matrix("modeled_gpu_s")
        ratio = gpu[:, 1] / gpu[:, 0]  # SA_hi / SA_lo
        assert np.all(ratio > 3.0) and np.all(ratio < 7.0)

    def test_render_contains_both_speedup_flavours(self):
        study = run_speedup_study("cdd", SMOKE)
        out = study.render()
        assert "modeled GeForce GT 560M" in out
        assert "measured vectorized ensemble" in out

    def test_runtime_curve_table_consistent_with_cells(self):
        study = run_speedup_study("cdd", SMOKE)
        out = study.render_runtime_curves()
        assert "CPU serial" in out
        # The runtime table reports every size row (right-aligned cells).
        for n in study.sizes:
            assert f" {n} " in out or f"\n{n} " in out
