"""Paired statistical comparisons."""

import numpy as np
import pytest

from repro.analysis.stats import PairedComparison, compare_paired, pairwise_report


class TestComparePaired:
    def test_clear_winner(self, rng):
        a = rng.normal(10, 1, 40)
        b = a + 5.0
        cmp = compare_paired("A", a, "B", b)
        assert cmp.wins_a == 40 and cmp.wins_b == 0
        assert cmp.median_diff < 0
        assert cmp.significant
        assert "A better" in cmp.describe()

    def test_all_ties(self):
        a = np.ones(10)
        cmp = compare_paired("A", a, "B", a.copy())
        assert cmp.ties == 10
        assert cmp.p_value == 1.0
        assert not cmp.significant
        assert "tied" in cmp.describe()

    def test_noise_not_significant(self, rng):
        a = rng.normal(0, 1, 30)
        b = a + rng.normal(0, 1e-3, 30) * rng.choice([-1, 1], 30)
        cmp = compare_paired("A", a, "B", b)
        # Symmetric tiny noise: should rarely be significant.
        assert cmp.wins_a + cmp.wins_b + cmp.ties == 30

    def test_input_validation(self):
        with pytest.raises(ValueError):
            compare_paired("A", np.ones(3), "B", np.ones(4))
        with pytest.raises(ValueError):
            compare_paired("A", np.ones(0), "B", np.ones(0))
        with pytest.raises(ValueError):
            compare_paired("A", np.ones((2, 2)), "B", np.ones((2, 2)))

    def test_symmetry(self, rng):
        a = rng.normal(0, 1, 25)
        b = rng.normal(0.5, 1, 25)
        ab = compare_paired("A", a, "B", b)
        ba = compare_paired("B", b, "A", a)
        assert ab.p_value == pytest.approx(ba.p_value)
        assert ab.wins_a == ba.wins_b
        assert ab.median_diff == pytest.approx(-ba.median_diff)


class TestPairwiseReport:
    def test_all_pairs_present(self, rng):
        samples = {
            "X": rng.normal(0, 1, 20),
            "Y": rng.normal(1, 1, 20),
            "Z": rng.normal(2, 1, 20),
        }
        report = pairwise_report(samples)
        assert "X vs Y" in report
        assert "X vs Z" in report
        assert "Y vs Z" in report
        assert report.count("\n") == 2

    def test_integration_with_deviation_study(self, tmp_store_path):
        from repro.bestknown.store import BestKnownStore
        from repro.experiments.config import SCALES
        from repro.experiments.deviation import run_deviation_study

        study = run_deviation_study(
            "cdd", SCALES["smoke"], BestKnownStore(tmp_store_path)
        )
        report = study.significance_report()
        assert "Wilcoxon" in study.render()
        assert "vs" in report
        # Per-h breakdown present for CDD.
        assert "h factor" in study.per_h_breakdown()
