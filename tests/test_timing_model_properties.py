"""Property tests of the device timing model.

The roofline model is only trustworthy if it responds monotonically to its
inputs; these tests pin those directions so future calibration tweaks can't
silently break the model's physics.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpusim.device import GEFORCE_GT_560M, Device
from repro.gpusim.kernel import KernelCost, kernel
from repro.gpusim.launch import linear_config


def time_one_launch(spec, threads, block, cycles, bytes_per_thread,
                    atomics=0, shared=0.0):
    """Modeled kernel time for one launch with the given cost."""
    dev = Device(spec=spec, seed=0)
    buf = dev.malloc(8)

    @kernel(
        "probe", registers=24,
        cost=lambda ctx, b: KernelCost(
            cycles_per_thread=cycles,
            global_bytes_per_thread=bytes_per_thread,
            shared_bytes_per_block=shared,
            atomic_ops=atomics,
        ),
    )
    def probe(ctx, b):
        """No-op probe kernel."""

    dev.reset_clocks()
    dev.launch(probe, linear_config(threads, block), buf)
    dev.synchronize()
    return dev.profiler.kernel_time()


SPEC = GEFORCE_GT_560M


class TestMonotonicity:
    @given(c=st.floats(100, 1e6), factor=st.floats(1.5, 10))
    def test_more_cycles_never_faster(self, c, factor):
        lo = time_one_launch(SPEC, 768, 192, c, 8.0)
        hi = time_one_launch(SPEC, 768, 192, c * factor, 8.0)
        assert hi >= lo

    @given(b=st.floats(8, 1e5), factor=st.floats(1.5, 10))
    def test_more_bytes_never_faster(self, b, factor):
        lo = time_one_launch(SPEC, 768, 192, 10.0, b)
        hi = time_one_launch(SPEC, 768, 192, 10.0, b * factor)
        assert hi >= lo

    @given(a=st.integers(0, 10_000))
    def test_atomics_add_serial_time(self, a):
        base = time_one_launch(SPEC, 256, 64, 10.0, 8.0, atomics=0)
        with_atomics = time_one_launch(SPEC, 256, 64, 10.0, 8.0, atomics=a)
        assert with_atomics == pytest.approx(
            base + a * SPEC.atomic_op_s, rel=1e-9
        )

    def test_faster_clock_is_faster_when_compute_bound(self):
        fast = SPEC.with_overrides(core_clock_hz=SPEC.core_clock_hz * 2)
        t_slow = time_one_launch(SPEC, 768, 192, 1e6, 8.0)
        t_fast = time_one_launch(fast, 768, 192, 1e6, 8.0)
        assert t_fast < t_slow

    def test_more_bandwidth_is_faster_when_memory_bound(self):
        wide = SPEC.with_overrides(
            mem_bandwidth_bytes_per_s=SPEC.mem_bandwidth_bytes_per_s * 4
        )
        t_narrow = time_one_launch(SPEC, 768, 192, 1.0, 1e5)
        t_wide = time_one_launch(wide, 768, 192, 1.0, 1e5)
        assert t_wide < t_narrow

    def test_more_sms_never_slower(self):
        big = SPEC.with_overrides(num_sms=SPEC.num_sms * 4)
        t_small = time_one_launch(SPEC, 16 * 192, 192, 1e5, 8.0)
        t_big = time_one_launch(big, 16 * 192, 192, 1e5, 8.0)
        assert t_big <= t_small

    @given(threads=st.sampled_from([192, 384, 768, 1536, 3072]))
    def test_more_threads_never_faster_at_fixed_block(self, threads):
        smaller = time_one_launch(SPEC, 192, 192, 1e5, 64.0)
        larger = time_one_launch(SPEC, threads, 192, 1e5, 64.0)
        assert larger >= smaller - 1e-12

    def test_roofline_take_max(self):
        # A strongly memory-bound kernel's time is insensitive to cycles
        # below the bandwidth bound.
        t1 = time_one_launch(SPEC, 768, 192, 1.0, 1e6)
        t2 = time_one_launch(SPEC, 768, 192, 100.0, 1e6)
        assert t1 == pytest.approx(t2, rel=1e-6)


class TestWaveBehaviour:
    def test_stepwise_in_blocks(self):
        # Register-limited to 4 blocks/SM at 192 threads and 24+ registers:
        # 16 co-resident blocks across 4 SMs.  17 blocks need a second wave
        # on one SM -- time jumps.
        t16 = time_one_launch(SPEC, 16 * 192, 192, 1e6, 8.0)
        t17 = time_one_launch(SPEC, 17 * 192, 192, 1e6, 8.0)
        assert t17 > t16 * 1.2

    def test_flat_within_wave(self):
        # 2, 3 or 4 blocks of 192: still one block per SM at most -- the
        # busiest SM does the same work, so compute time stays flat.
        t2 = time_one_launch(SPEC, 2 * 192, 192, 1e6, 1.0)
        t4 = time_one_launch(SPEC, 4 * 192, 192, 1e6, 1.0)
        assert t4 == pytest.approx(t2, rel=0.05)
