"""Property tests of the device timing model.

The roofline model is only trustworthy if it responds monotonically to its
inputs; these tests pin those directions so future calibration tweaks can't
silently break the model's physics.  The monotonicity invariants are
asserted for *every* registered device profile (a new generation joins the
contract just by registering), and the GT 560M golden values pin the
refactored timing layer bit-for-bit to the pre-refactor inline model.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpusim.device import GEFORCE_GT_560M, Device
from repro.gpusim.kernel import KernelCost, kernel
from repro.gpusim.launch import linear_config, occupancy
from repro.gpusim.profiles import get_profile, profile_names
from repro.gpusim.timing import TimingModel, waves


def time_one_launch(spec, threads, block, cycles, bytes_per_thread,
                    atomics=0, shared=0.0):
    """Modeled kernel time for one launch with the given cost."""
    dev = Device(spec=spec, seed=0)
    buf = dev.malloc(8)

    @kernel(
        "probe", registers=24,
        cost=lambda ctx, b: KernelCost(
            cycles_per_thread=cycles,
            global_bytes_per_thread=bytes_per_thread,
            shared_bytes_per_block=shared,
            atomic_ops=atomics,
        ),
    )
    def probe(ctx, b):
        """No-op probe kernel."""

    dev.reset_clocks()
    dev.launch(probe, linear_config(threads, block), buf)
    dev.synchronize()
    return dev.profiler.kernel_time()


SPEC = GEFORCE_GT_560M


class TestMonotonicity:
    @given(c=st.floats(100, 1e6), factor=st.floats(1.5, 10))
    def test_more_cycles_never_faster(self, c, factor):
        lo = time_one_launch(SPEC, 768, 192, c, 8.0)
        hi = time_one_launch(SPEC, 768, 192, c * factor, 8.0)
        assert hi >= lo

    @given(b=st.floats(8, 1e5), factor=st.floats(1.5, 10))
    def test_more_bytes_never_faster(self, b, factor):
        lo = time_one_launch(SPEC, 768, 192, 10.0, b)
        hi = time_one_launch(SPEC, 768, 192, 10.0, b * factor)
        assert hi >= lo

    @given(a=st.integers(0, 10_000))
    def test_atomics_add_serial_time(self, a):
        base = time_one_launch(SPEC, 256, 64, 10.0, 8.0, atomics=0)
        with_atomics = time_one_launch(SPEC, 256, 64, 10.0, 8.0, atomics=a)
        assert with_atomics == pytest.approx(
            base + a * SPEC.atomic_op_s, rel=1e-9
        )

    def test_faster_clock_is_faster_when_compute_bound(self):
        fast = SPEC.with_overrides(core_clock_hz=SPEC.core_clock_hz * 2)
        t_slow = time_one_launch(SPEC, 768, 192, 1e6, 8.0)
        t_fast = time_one_launch(fast, 768, 192, 1e6, 8.0)
        assert t_fast < t_slow

    def test_more_bandwidth_is_faster_when_memory_bound(self):
        wide = SPEC.with_overrides(
            mem_bandwidth_bytes_per_s=SPEC.mem_bandwidth_bytes_per_s * 4
        )
        t_narrow = time_one_launch(SPEC, 768, 192, 1.0, 1e5)
        t_wide = time_one_launch(wide, 768, 192, 1.0, 1e5)
        assert t_wide < t_narrow

    def test_more_sms_never_slower(self):
        big = SPEC.with_overrides(num_sms=SPEC.num_sms * 4)
        t_small = time_one_launch(SPEC, 16 * 192, 192, 1e5, 8.0)
        t_big = time_one_launch(big, 16 * 192, 192, 1e5, 8.0)
        assert t_big <= t_small

    @given(threads=st.sampled_from([192, 384, 768, 1536, 3072]))
    def test_more_threads_never_faster_at_fixed_block(self, threads):
        smaller = time_one_launch(SPEC, 192, 192, 1e5, 64.0)
        larger = time_one_launch(SPEC, threads, 192, 1e5, 64.0)
        assert larger >= smaller - 1e-12

    def test_roofline_take_max(self):
        # A strongly memory-bound kernel's time is insensitive to cycles
        # below the bandwidth bound.
        t1 = time_one_launch(SPEC, 768, 192, 1.0, 1e6)
        t2 = time_one_launch(SPEC, 768, 192, 100.0, 1e6)
        assert t1 == pytest.approx(t2, rel=1e-6)


class TestEveryProfile:
    """The monotonicity contract holds for every registered generation."""

    @pytest.mark.parametrize("profile_key", profile_names())
    def test_more_threads_never_faster(self, profile_key):
        spec = get_profile(profile_key).spec
        block = min(192, spec.max_threads_per_block)
        times = [time_one_launch(spec, k * block, block, 1e5, 64.0)
                 for k in (1, 4, 16, 64, 256)]
        for lo, hi in zip(times, times[1:]):
            assert hi >= lo - 1e-12

    @pytest.mark.parametrize("profile_key", profile_names())
    def test_more_cycles_never_faster(self, profile_key):
        spec = get_profile(profile_key).spec
        times = [time_one_launch(spec, 768, 192, c, 8.0)
                 for c in (10.0, 1e3, 1e5, 1e7)]
        for lo, hi in zip(times, times[1:]):
            assert hi >= lo - 1e-12

    @pytest.mark.parametrize("profile_key", profile_names())
    def test_more_bytes_never_faster(self, profile_key):
        spec = get_profile(profile_key).spec
        times = [time_one_launch(spec, 768, 192, 10.0, b)
                 for b in (8.0, 1e3, 1e5, 1e7)]
        for lo, hi in zip(times, times[1:]):
            assert hi >= lo - 1e-12

    @pytest.mark.parametrize("profile_key", profile_names())
    def test_more_waves_never_faster(self, profile_key):
        spec = get_profile(profile_key).spec
        block = 192
        # Enough blocks to guarantee wave growth on any registered SM count.
        base_blocks = spec.num_sms * spec.max_blocks_per_sm
        t1 = time_one_launch(spec, base_blocks * block, block, 1e5, 8.0)
        t2 = time_one_launch(spec, 2 * base_blocks * block, block, 1e5, 8.0)
        assert t2 > t1

    @pytest.mark.parametrize("profile_key", profile_names())
    def test_roofline_consistency(self, profile_key):
        """Kernel time decomposes exactly as the roofline contract says.

        ``overhead + max(compute, memory) + staging + dispatch + atomics``
        must reproduce the recorded kernel time for both a compute-bound
        and a memory-bound probe, with the limiter label matching the
        winning leg.
        """
        spec = get_profile(profile_key).spec
        model = TimingModel.default()
        for cycles, bpt in ((1e6, 8.0), (1.0, 1e6)):
            cfg = linear_config(768, 192)
            occ = occupancy(spec, cfg.threads_per_block, 24, 0)
            cost = KernelCost(cycles_per_thread=cycles,
                              global_bytes_per_thread=bpt,
                              atomic_ops=16)
            timing = model.kernel_timing(spec, cfg, occ.blocks_per_sm, cost)
            reassembled = (timing.overhead_s
                           + max(timing.compute_s, timing.memory_s)
                           + timing.staging_s + timing.dispatch_s
                           + timing.atomic_s)
            assert timing.total_s == pytest.approx(reassembled, rel=1e-12)
            expected_limiter = ("compute" if timing.compute_s
                                >= timing.memory_s else "memory")
            assert timing.limiter == expected_limiter
            assert sum(timing.components().values()) == pytest.approx(
                timing.total_s, rel=1e-12
            )
            measured = time_one_launch(spec, 768, 192, cycles, bpt,
                                       atomics=16)
            assert measured == pytest.approx(timing.total_s, rel=1e-12)


# Modeled kernel times captured on the pre-refactor inline model
# (Device._model_duration).  The refactored timing layer must reproduce
# them *bit for bit* -- the summation order inside KernelTiming.total_s is
# part of the contract.  Key: (profile, threads, block, cycles_per_thread,
# bytes_per_thread, atomic_ops, shared_bytes_per_block).
GOLDEN_KERNEL_TIMES = {
    ("gt560m", 768, 192, 1200.0, 48.0, 0, 0.0): 1.0296774193548387e-05,
    ("gt560m", 768, 192, 50.0, 4096.0, 768, 512.0): 9.035733333333335e-05,
    ("gt560m", 3072, 256, 100000.0, 64.0, 0, 2048.0): 0.001041960464516129,
    ("fermi", 768, 192, 1200.0, 48.0, 0, 0.0): 1.0628571428571428e-05,
    ("k20", 768, 192, 1200.0, 48.0, 64, 0.0): 9.502127659574468e-06,
}


class TestGoldenBitIdentity:
    @pytest.mark.parametrize("key", sorted(GOLDEN_KERNEL_TIMES))
    def test_kernel_time_bit_identical(self, key):
        profile, threads, block, cycles, bpt, atomics, shared = key
        spec = get_profile(profile).spec
        got = time_one_launch(spec, threads, block, cycles, bpt,
                              atomics=atomics, shared=shared)
        assert got == GOLDEN_KERNEL_TIMES[key]  # exact, no tolerance

    def test_transfer_time_bit_identical(self):
        spec = get_profile("gt560m").spec
        model = TimingModel.default()
        assert model.transfer_time(spec, 4096) == 1.0682666666666667e-05

    def test_waves_helper_matches_occupancy(self):
        spec = get_profile("gt560m").spec
        occ = occupancy(spec, 192, 24, 0)
        # 4 SMs x blocks_per_sm co-resident blocks; one more block forces
        # a second wave.
        resident = spec.num_sms * occ.blocks_per_sm
        assert waves(spec, resident, occ.blocks_per_sm) == 1
        assert waves(spec, resident + 1, occ.blocks_per_sm) == 2


class TestWaveBehaviour:
    def test_stepwise_in_blocks(self):
        # Register-limited to 4 blocks/SM at 192 threads and 24+ registers:
        # 16 co-resident blocks across 4 SMs.  17 blocks need a second wave
        # on one SM -- time jumps.
        t16 = time_one_launch(SPEC, 16 * 192, 192, 1e6, 8.0)
        t17 = time_one_launch(SPEC, 17 * 192, 192, 1e6, 8.0)
        assert t17 > t16 * 1.2

    def test_flat_within_wave(self):
        # 2, 3 or 4 blocks of 192: still one block per SM at most -- the
        # busiest SM does the same work, so compute time stays flat.
        t2 = time_one_launch(SPEC, 2 * 192, 192, 1e6, 1.0)
        t4 = time_one_launch(SPEC, 4 * 192, 192, 1e6, 1.0)
        assert t4 == pytest.approx(t2, rel=0.05)
