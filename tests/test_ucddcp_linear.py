"""Tests for the O(n) UCDDCP sequence optimizer (Awasthi et al. [8])."""

import numpy as np
import pytest
from hypothesis import given

from repro.problems.ucddcp import UCDDCPInstance
from repro.problems.validation import validate_schedule
from repro.seqopt.cdd_linear import optimize_cdd_sequence
from repro.seqopt.lp_reference import lp_optimize_sequence
from repro.seqopt.ucddcp_linear import (
    optimize_ucddcp_sequence,
    ucddcp_objective_for_sequence,
)
from tests.conftest import permutations_of, ucddcp_instances


class TestPaperWalkthrough:
    """Section IV-B's illustration with d = 22."""

    def test_final_objective(self, paper_ucddcp):
        s = optimize_ucddcp_sequence(paper_ucddcp, np.arange(5))
        assert s.objective == 77.0

    def test_compressed_jobs(self, paper_ucddcp):
        # Jobs 4 and 5 (positions 4, 5) are compressed by one unit each.
        s = optimize_ucddcp_sequence(paper_ucddcp, np.arange(5))
        assert np.array_equal(s.reduction, [0, 0, 0, 1, 1])

    def test_cdd_stage_objective(self, paper_ucddcp):
        # The CDD relaxation of the d=22 example optimizes to 81.
        s = optimize_ucddcp_sequence(paper_ucddcp, np.arange(5))
        assert s.meta["cdd_objective"] == 81.0

    def test_due_date_position_unchanged(self, paper_ucddcp):
        # Property 1: same due-date position as the CDD relaxation (job 2).
        s = optimize_ucddcp_sequence(paper_ucddcp, np.arange(5))
        assert s.meta["due_date_position"] == 2
        assert s.completion[1] == 22.0

    def test_final_completions(self, paper_ucddcp):
        s = optimize_ucddcp_sequence(paper_ucddcp, np.arange(5))
        assert np.array_equal(s.completion, [17.0, 22.0, 24.0, 27.0, 30.0])

    def test_feasible_no_idle(self, paper_ucddcp):
        s = optimize_ucddcp_sequence(paper_ucddcp, np.arange(5))
        validate_schedule(paper_ucddcp, s, require_no_idle=True)


class TestAgainstLP:
    @given(inst=ucddcp_instances(min_n=1, max_n=7))
    def test_matches_lp_identity_sequence(self, inst):
        seq = np.arange(inst.n)
        ours = optimize_ucddcp_sequence(inst, seq)
        lp = lp_optimize_sequence(inst, seq)
        assert ours.objective == pytest.approx(lp.objective, abs=1e-6)

    @given(inst=ucddcp_instances(min_n=5, max_n=5), seq=permutations_of(5))
    def test_matches_lp_random_sequence(self, inst, seq):
        ours = optimize_ucddcp_sequence(inst, seq)
        lp = lp_optimize_sequence(inst, seq)
        assert ours.objective == pytest.approx(lp.objective, abs=1e-6)


class TestStructuralProperties:
    @given(inst=ucddcp_instances(min_n=2, max_n=8))
    def test_never_worse_than_cdd_relaxation(self, inst):
        # Compression is optional, so the UCDDCP optimum cannot exceed the
        # CDD optimum of the same sequence (Property 2's premise).
        seq = np.arange(inst.n)
        ucd = optimize_ucddcp_sequence(inst, seq)
        cdd = optimize_cdd_sequence(inst.relax_to_cdd(), seq)
        assert ucd.objective <= cdd.objective + 1e-9
        assert ucd.meta["cdd_objective"] == pytest.approx(cdd.objective)

    @given(inst=ucddcp_instances(min_n=2, max_n=8))
    def test_property1_due_date_position_preserved(self, inst):
        seq = np.arange(inst.n)
        ucd = optimize_ucddcp_sequence(inst, seq)
        cdd = optimize_cdd_sequence(inst.relax_to_cdd(), seq)
        assert ucd.meta["due_date_position"] == cdd.meta["due_date_position"]

    @given(inst=ucddcp_instances(min_n=2, max_n=8))
    def test_property2_all_or_nothing_compression(self, inst):
        # Every compressed job is compressed to its minimum.
        s = optimize_ucddcp_sequence(inst, np.arange(inst.n))
        max_red = inst.max_reduction[s.sequence]
        compressed = s.reduction > 0
        assert np.allclose(s.reduction[compressed], max_red[compressed])

    @given(inst=ucddcp_instances(min_n=2, max_n=8))
    def test_schedule_feasible_no_idle(self, inst):
        s = optimize_ucddcp_sequence(inst, np.arange(inst.n))
        validate_schedule(inst, s, require_no_idle=True)

    @given(inst=ucddcp_instances(min_n=2, max_n=8))
    def test_anchored_job_stays_on_time(self, inst):
        s = optimize_ucddcp_sequence(inst, np.arange(inst.n))
        r = s.meta["due_date_position"]
        if r >= 1:
            assert s.completion[r - 1] == pytest.approx(inst.due_date)

    @given(inst=ucddcp_instances(min_n=1, max_n=8))
    def test_objective_only_variant_matches(self, inst):
        seq = np.arange(inst.n)
        assert ucddcp_objective_for_sequence(inst, seq) == pytest.approx(
            optimize_ucddcp_sequence(inst, seq).objective
        )


class TestCompressionRules:
    def test_tardy_job_compressed_when_beneficial(self):
        # Two jobs, second tardy with beta > gamma: compress it.
        inst = UCDDCPInstance([4, 4], [4, 2], [10, 10], [1, 5], [1, 2], 8.0)
        s = optimize_ucddcp_sequence(inst, np.arange(2))
        # Job at position 2 is tardy (r=1); beta=5 > gamma=2 -> compress.
        assert s.reduction[1] == 2.0

    def test_tardy_job_kept_when_penalty_too_high(self):
        inst = UCDDCPInstance([4, 4], [4, 2], [10, 10], [1, 5], [1, 9], 8.0)
        s = optimize_ucddcp_sequence(inst, np.arange(2))
        assert s.reduction[1] == 0.0

    def test_early_job_compression_pulls_predecessors(self):
        # Three jobs all early; compressing the job at d helps when the sum
        # of its predecessors' alphas exceeds gamma.
        inst = UCDDCPInstance(
            [4, 4, 4], [4, 4, 1], [6, 6, 1], [20, 20, 20], [1, 1, 2], 12.0
        )
        s = optimize_ucddcp_sequence(inst, np.arange(3))
        # r = 3 (everything early, last job at d); predecessors' alpha sum
        # is 12 > gamma_3 = 2 -> compress job 3 fully (by 3).
        assert s.meta["due_date_position"] == 3
        assert s.reduction[2] == 3.0
        # Predecessors slid right: completions are d-anchored.
        assert s.completion[2] == 12.0
        assert np.array_equal(s.completion, [7.0, 11.0, 12.0])
